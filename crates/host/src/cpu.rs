//! The host CPU timing model (Table IV "CPU" block), and the CPU-NDP
//! configuration (host-class cores inside the CXL memory, §IV-A).
//!
//! Memory-bound phases on an out-of-order core are governed by how many
//! misses the core keeps in flight (its MLP window) and the latency of each
//! miss; streaming throughput per core is `mlp × line / latency`, summed
//! over cores and capped by the bandwidth of whichever pipe the data
//! crosses (local DDR5, the CXL link, or — for CPU-NDP — the device's
//! internal DRAM). Pointer-chasing phases serialize on the dependent-load
//! latency instead. Both regimes, plus a compute term, make up
//! [`HostCpu::stream_runtime_ns`] and [`HostCpu::chase_latency_ns`].

use m2ndp_sim::Frequency;

/// Where data lives relative to the executing cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataHome {
    /// The host's local DDR5.
    LocalDram,
    /// A passive CXL memory expander across the link.
    CxlExpander,
    /// Inside the same CXL device as the (CPU-NDP) cores.
    DeviceInternal,
}

/// Host CPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HostCpuConfig {
    /// Core count (Table IV: 64).
    pub cores: u32,
    /// Core frequency (3.2 GHz).
    pub freq: Frequency,
    /// Outstanding misses one core sustains (MSHRs / LFB entries).
    pub mlp: u32,
    /// Sustained ops per core per cycle for the compute component.
    pub ops_per_cycle: f64,
    /// Cacheline transfer size.
    pub line_bytes: u32,
    /// Local DRAM load-to-use latency (ns).
    pub local_latency_ns: f64,
    /// Local DRAM bandwidth (bytes/s; 409.6 GB/s).
    pub local_bw: f64,
    /// CXL load-to-use latency (ns; 150/300/600).
    pub cxl_latency_ns: f64,
    /// CXL link bandwidth per direction (bytes/s; 64 GB/s).
    pub cxl_bw: f64,
    /// Device-internal DRAM bandwidth for CPU-NDP placement (bytes/s).
    pub internal_bw: f64,
    /// Device-internal load-to-use latency for CPU-NDP (ns).
    pub internal_latency_ns: f64,
}

impl Default for HostCpuConfig {
    fn default() -> Self {
        Self {
            cores: 64,
            freq: Frequency::ghz(3.2),
            mlp: 14,
            ops_per_cycle: 4.0,
            line_bytes: 64,
            local_latency_ns: 90.0,
            local_bw: 409.6e9,
            cxl_latency_ns: 150.0,
            cxl_bw: 64e9,
            internal_bw: 409.6e9,
            internal_latency_ns: 105.0,
        }
    }
}

impl HostCpuConfig {
    /// The CPU-NDP configuration: 32 host-class cores placed inside the
    /// CXL device with its internal 409.6 GB/s (§IV-A's EPYC measurement
    /// proxy — see the substitutions note in PAPER.md).
    pub fn cpu_ndp() -> Self {
        Self {
            cores: 32,
            ..Self::default()
        }
    }

    /// Scales the CXL load-to-use latency (Fig. 13a's 2×/4× LtU).
    pub fn with_ltu_scale(mut self, factor: f64) -> Self {
        self.cxl_latency_ns *= factor;
        self
    }
}

/// The host CPU model.
#[derive(Debug, Clone)]
pub struct HostCpu {
    cfg: HostCpuConfig,
}

impl HostCpu {
    /// Creates the model.
    pub fn new(cfg: HostCpuConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &HostCpuConfig {
        &self.cfg
    }

    fn home_params(&self, home: DataHome) -> (f64, f64) {
        match home {
            DataHome::LocalDram => (self.cfg.local_latency_ns, self.cfg.local_bw),
            DataHome::CxlExpander => (self.cfg.cxl_latency_ns, self.cfg.cxl_bw),
            DataHome::DeviceInternal => (self.cfg.internal_latency_ns, self.cfg.internal_bw),
        }
    }

    /// Aggregate streaming bandwidth the cores can extract from `home`
    /// (bytes/s): per-core MLP-limited throughput × cores, capped by the
    /// pipe.
    pub fn stream_bw(&self, home: DataHome) -> f64 {
        let (lat_ns, pipe_bw) = self.home_params(home);
        let per_core = self.cfg.mlp as f64 * self.cfg.line_bytes as f64 / (lat_ns * 1e-9);
        (per_core * self.cfg.cores as f64).min(pipe_bw)
    }

    /// Runtime of a streaming phase that moves `bytes` and executes `ops`
    /// arithmetic operations, in nanoseconds.
    pub fn stream_runtime_ns(&self, bytes: u64, ops: u64, home: DataHome) -> f64 {
        let mem_ns = bytes as f64 / self.stream_bw(home) * 1e9;
        let compute_ns = ops as f64
            / (self.cfg.ops_per_cycle * self.cfg.cores as f64 * self.cfg.freq.hz())
            * 1e9;
        mem_ns.max(compute_ns)
    }

    /// Latency of a dependent-load chain of `hops` to `home` data plus
    /// `compute_ns` of serial host compute (hash functions etc.).
    pub fn chase_latency_ns(&self, hops: u32, compute_ns: f64, home: DataHome) -> f64 {
        let (lat_ns, _) = self.home_params(home);
        hops as f64 * lat_ns + compute_ns
    }

    /// Peak arithmetic throughput (ops/s) for the roofline.
    pub fn peak_ops(&self) -> f64 {
        self.cfg.ops_per_cycle * self.cfg.cores as f64 * self.cfg.freq.hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_stream_is_link_bound() {
        let cpu = HostCpu::new(HostCpuConfig::default());
        // 64 cores × 14 × 64 B / 150 ns ≈ 382 GB/s demand ≫ 64 GB/s link.
        assert!((cpu.stream_bw(DataHome::CxlExpander) - 64e9).abs() < 1.0);
    }

    #[test]
    fn local_stream_approaches_dram_bw() {
        let cpu = HostCpu::new(HostCpuConfig::default());
        let bw = cpu.stream_bw(DataHome::LocalDram);
        assert!(bw > 300e9, "local stream too slow: {bw}");
        assert!(bw <= 409.6e9);
    }

    #[test]
    fn cpu_ndp_is_latency_limited_inside_device() {
        let ndp = HostCpu::new(HostCpuConfig::cpu_ndp());
        let bw = ndp.stream_bw(DataHome::DeviceInternal);
        // 32 cores × 14 × 64 / 105 ns ≈ 273 GB/s < 409.6 GB/s: the cores,
        // not the DRAM, are the bottleneck (why M²NDP beats CPU-NDP).
        assert!(bw < 409.6e9 * 0.75, "CPU-NDP should not saturate: {bw}");
        assert!(bw > 409.6e9 * 0.5);
    }

    #[test]
    fn stream_runtime_mem_vs_compute_bound() {
        let cpu = HostCpu::new(HostCpuConfig::default());
        // Memory-bound: 1 GB over CXL at 64 GB/s ≈ 15.6 ms.
        let t = cpu.stream_runtime_ns(1 << 30, 1, DataHome::CxlExpander);
        assert!((t * 1e-9 - (1u64 << 30) as f64 / 64e9).abs() < 1e-4);
        // Compute-bound: huge op count on tiny data.
        let t2 = cpu.stream_runtime_ns(64, 1 << 34, DataHome::LocalDram);
        assert!(t2 > cpu.stream_runtime_ns(64, 1, DataHome::LocalDram) * 1000.0);
    }

    #[test]
    fn chase_latency_scales_with_ltu() {
        let base = HostCpu::new(HostCpuConfig::default());
        let slow = HostCpu::new(HostCpuConfig::default().with_ltu_scale(4.0));
        let a = base.chase_latency_ns(3, 200.0, DataHome::CxlExpander);
        let b = slow.chase_latency_ns(3, 200.0, DataHome::CxlExpander);
        assert!((a - (3.0 * 150.0 + 200.0)).abs() < 1e-9);
        assert!((b - (3.0 * 600.0 + 200.0)).abs() < 1e-9);
    }
}
