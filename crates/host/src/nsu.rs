//! The NSU prior-work model (\[81\] in the paper: "Toward standardized
//! near-data processing with unrestricted data placement for GPUs").
//!
//! NSU-style fine-grained NDP keeps the *host* responsible for translating
//! and generating every memory address the NDP logic touches; each offload
//! command carries its target addresses over the interconnect. For
//! data-intensive kernels the command stream itself saturates the CXL link,
//! which is why NSU underperforms even the passive-memory baseline on
//! average (§IV-C: the link "became the bottleneck due to all addresses
//! translated and sent from the host").

/// NSU cost model.
#[derive(Debug, Clone, Copy)]
pub struct NsuModel {
    /// CXL link bandwidth per direction (bytes/s).
    pub link_bw: f64,
    /// Device internal DRAM bandwidth (bytes/s).
    pub internal_bw: f64,
    /// Bytes of command traffic per NDP memory access (address + opcode
    /// metadata; 8 B address + 8 B descriptor).
    pub command_bytes_per_access: u32,
}

impl Default for NsuModel {
    fn default() -> Self {
        Self {
            link_bw: 64e9,
            internal_bw: 409.6e9,
            command_bytes_per_access: 16,
        }
    }
}

impl NsuModel {
    /// Runtime (seconds) to process a kernel that performs `accesses`
    /// NDP memory accesses moving `data_bytes` of device-internal data and
    /// returning `result_bytes` to the host.
    pub fn runtime_s(&self, accesses: u64, data_bytes: u64, result_bytes: u64) -> f64 {
        let command_time = (accesses * self.command_bytes_per_access as u64) as f64 / self.link_bw;
        let result_time = result_bytes as f64 / self.link_bw;
        let dram_time = data_bytes as f64 / self.internal_bw;
        (command_time + result_time).max(dram_time)
    }

    /// Runtime of the passive-CXL baseline moving the same data over the
    /// link directly.
    pub fn baseline_runtime_s(&self, data_bytes: u64) -> f64 {
        data_bytes as f64 / self.link_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_stream_bottlenecks_fine_grained_access() {
        let m = NsuModel::default();
        // 32 B of data per access: command traffic (16 B) is half the data —
        // the link does 16 B of commands per 32 B of device-local work.
        let accesses = 1_000_000u64;
        let data = accesses * 32;
        let t = m.runtime_s(accesses, data, 0);
        let ideal_ndp = data as f64 / m.internal_bw;
        assert!(
            t > 3.0 * ideal_ndp,
            "NSU should be far from internal BW: {t} vs {ideal_ndp}"
        );
    }

    #[test]
    fn nsu_can_be_worse_than_baseline() {
        // When per-access data is small, shipping commands costs almost as
        // much as shipping the data: NSU ~ baseline or worse (Fig. 10c:
        // NSU 0.97× baseline on average).
        let m = NsuModel::default();
        let accesses = 1_000_000u64;
        let data = accesses * 16; // 16 B touched per access
        let nsu = m.runtime_s(accesses, data, 0);
        let baseline = m.baseline_runtime_s(data);
        assert!(nsu >= baseline);
    }

    #[test]
    fn coarse_access_still_helps_nsu() {
        let m = NsuModel::default();
        // 1 KB per command amortizes the command stream.
        let accesses = 10_000u64;
        let data = accesses * 1024;
        let nsu = m.runtime_s(accesses, data, 0);
        let baseline = m.baseline_runtime_s(data);
        assert!(nsu < baseline / 2.0);
    }
}
