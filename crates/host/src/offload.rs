//! NDP offloading mechanisms and their end-to-end cost (Fig. 5), plus the
//! open-loop request simulation behind the KVStore/DLRM tail-latency and
//! throughput experiments (Figs. 1b, 10b, 11a).
//!
//! Three mechanisms launch kernels on the device:
//!
//! * **M²func** (this paper): one CXL.mem write (launch) + one CXL.mem read
//!   (return value) — `z + 2x` end to end, with up to 48 concurrent kernels;
//! * **CXL.io ring buffer**: doorbell, command DMA, launch + error check —
//!   `z + 8y` (5y before, 3y after), concurrent kernels allowed;
//! * **CXL.io direct MMIO**: `z + 3y`, but a *single* outstanding kernel,
//!   since the device registers must not be overwritten (§II-C).

use m2ndp_cxl::{CxlIoModel, CxlLinkConfig};
use m2ndp_sim::rng::{exponential, seeded};
use m2ndp_sim::{EventQueue, Histogram};

/// A kernel-offload mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadMechanism {
    /// Memory-mapped functions over CXL.mem (§III-B).
    M2Func,
    /// Conventional ring buffer over CXL.io/PCIe.
    CxlIoRingBuffer,
    /// Direct device-register MMIO over CXL.io/PCIe.
    CxlIoDirect,
}

/// Latency/concurrency model for one mechanism.
#[derive(Debug, Clone)]
pub struct OffloadModel {
    mechanism: OffloadMechanism,
    link: CxlLinkConfig,
    io: CxlIoModel,
    max_concurrent: u32,
}

impl OffloadModel {
    /// Builds the model from the link/IO parameters in play.
    pub fn new(mechanism: OffloadMechanism, link: CxlLinkConfig, io: CxlIoModel) -> Self {
        let max_concurrent = match mechanism {
            OffloadMechanism::M2Func => 48,
            OffloadMechanism::CxlIoRingBuffer => 48,
            OffloadMechanism::CxlIoDirect => 1,
        };
        Self {
            mechanism,
            link,
            io,
            max_concurrent,
        }
    }

    /// Default-parameter model for a mechanism.
    pub fn with_defaults(mechanism: OffloadMechanism) -> Self {
        Self::new(
            mechanism,
            CxlLinkConfig::default_150ns(),
            CxlIoModel::default(),
        )
    }

    /// The mechanism.
    pub fn mechanism(&self) -> OffloadMechanism {
        self.mechanism
    }

    /// Host-side latency before the kernel starts executing (ns).
    pub fn pre_ns(&self) -> f64 {
        match self.mechanism {
            OffloadMechanism::M2Func => self.link.one_way_ns, // x
            OffloadMechanism::CxlIoRingBuffer => self.io.ring_buffer_pre_ns(),
            OffloadMechanism::CxlIoDirect => self.io.direct_pre_ns(),
        }
    }

    /// Latency after kernel completion until the host observes it (ns).
    pub fn post_ns(&self) -> f64 {
        match self.mechanism {
            OffloadMechanism::M2Func => self.link.one_way_ns, // x (sync read return)
            OffloadMechanism::CxlIoRingBuffer => self.io.ring_buffer_post_ns(),
            OffloadMechanism::CxlIoDirect => self.io.direct_post_ns(),
        }
    }

    /// Total communication overhead around one kernel (Fig. 5's totals
    /// minus z).
    pub fn overhead_ns(&self) -> f64 {
        self.pre_ns() + self.post_ns()
    }

    /// End-to-end latency of one kernel of runtime `z_ns`.
    pub fn end_to_end_ns(&self, z_ns: f64) -> f64 {
        z_ns + self.overhead_ns()
    }

    /// Maximum concurrently outstanding kernels.
    pub fn max_concurrent(&self) -> u32 {
        self.max_concurrent
    }
}

/// Open-loop offload simulation: Poisson request arrivals, each request
/// becomes one fine-grained NDP kernel; the device executes up to
/// `device_slots` kernels concurrently (or 1 for direct MMIO). Produces the
/// latency distribution for P95 reporting and the latency–throughput curves
/// of Fig. 11a.
#[derive(Debug)]
pub struct OffloadSim {
    model: OffloadModel,
    /// Concurrent kernels the device itself sustains.
    pub device_slots: u32,
}

/// Result of one open-loop run.
#[derive(Debug)]
pub struct OffloadRunResult {
    /// End-to-end request latencies (ns).
    pub latencies: Histogram,
    /// Achieved throughput (requests/s).
    pub throughput: f64,
}

impl OffloadSim {
    /// Creates the simulation.
    pub fn new(model: OffloadModel, device_slots: u32) -> Self {
        Self {
            model,
            device_slots,
        }
    }

    /// Runs `n_requests` arriving at `rate_per_sec`, each with a kernel
    /// service time drawn from `service_ns` (cycled). Deterministic under
    /// `seed`.
    pub fn run(
        &self,
        n_requests: usize,
        rate_per_sec: f64,
        service_ns: &[f64],
        seed: u64,
    ) -> OffloadRunResult {
        assert!(!service_ns.is_empty());
        let mut rng = seeded(seed);
        let mean_gap_ns = 1e9 / rate_per_sec;
        let concurrency = self.model.max_concurrent().min(self.device_slots).max(1);

        // Generate arrivals.
        let mut arrivals = Vec::with_capacity(n_requests);
        let mut t = 0.0f64;
        for _ in 0..n_requests {
            t += exponential(&mut rng, mean_gap_ns);
            arrivals.push(t);
        }

        // Server pool of `concurrency` kernel slots; FIFO admission.
        let mut free_at: EventQueue<()> = EventQueue::new();
        for _ in 0..concurrency {
            free_at.schedule(0, ());
        }
        let mut latencies = Histogram::new();
        let mut last_done = 0.0f64;
        for (i, &arr) in arrivals.iter().enumerate() {
            let (slot_free, ()) = free_at.pop().expect("pool maintains slot count");
            let start = (slot_free as f64).max(arr + self.model.pre_ns());
            let service = service_ns[i % service_ns.len()];
            let kernel_done = start + service;
            let observed = kernel_done + self.model.post_ns();
            // Direct MMIO cannot reuse its device register until the host
            // has read the result back (§II-C); the other mechanisms free
            // the kernel slot at completion.
            let slot_free_at = if self.model.mechanism() == OffloadMechanism::CxlIoDirect {
                observed
            } else {
                kernel_done
            };
            free_at.schedule(slot_free_at.ceil() as u64, ());
            latencies.record((observed - arr).max(0.0) as u64);
            last_done = last_done.max(observed);
        }
        OffloadRunResult {
            latencies,
            throughput: n_requests as f64 / (last_done * 1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_overheads_match_paper_math() {
        // x = 75 ns, y = 500 ns → M²func 150 ns, RB 4000 ns, DR 1500 ns.
        let m2 = OffloadModel::with_defaults(OffloadMechanism::M2Func);
        let rb = OffloadModel::with_defaults(OffloadMechanism::CxlIoRingBuffer);
        let dr = OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect);
        assert!((m2.overhead_ns() - 150.0).abs() < 1e-9);
        assert!((rb.overhead_ns() - 4000.0).abs() < 1e-9);
        assert!((dr.overhead_ns() - 1500.0).abs() < 1e-9);
        // Fig. 5 example: z = 6.4 µs → communication reduced 33–75 %.
        let z = 6400.0;
        assert!(m2.end_to_end_ns(z) < dr.end_to_end_ns(z));
        assert!(dr.end_to_end_ns(z) < rb.end_to_end_ns(z));
        let comm_reduction_vs_rb = 1.0 - m2.overhead_ns() / rb.overhead_ns();
        assert!(comm_reduction_vs_rb > 0.9);
    }

    #[test]
    fn direct_mmio_serializes_kernels() {
        let dr = OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect);
        assert_eq!(dr.max_concurrent(), 1);
        let m2 = OffloadModel::with_defaults(OffloadMechanism::M2Func);
        assert_eq!(m2.max_concurrent(), 48);
    }

    #[test]
    fn m2func_sustains_higher_throughput_than_direct() {
        let service = vec![770.0]; // 0.77 µs P95 kernel runtime (§IV-C)
        let rate = 1.0e7; // 10M req/s offered
        let m2 = OffloadSim::new(OffloadModel::with_defaults(OffloadMechanism::M2Func), 48)
            .run(20_000, rate, &service, 42);
        let dr = OffloadSim::new(
            OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect),
            48,
        )
        .run(20_000, rate, &service, 42);
        assert!(
            m2.throughput > 10.0 * dr.throughput,
            "M2func {:.2e} vs direct {:.2e}",
            m2.throughput,
            dr.throughput
        );
    }

    #[test]
    fn ring_buffer_inflates_tail_latency_at_low_load() {
        let service = vec![770.0];
        let rate = 1.0e5; // light load: latency ≈ overhead + service
        let mut m2 = OffloadSim::new(OffloadModel::with_defaults(OffloadMechanism::M2Func), 48)
            .run(5_000, rate, &service, 7);
        let mut rb = OffloadSim::new(
            OffloadModel::with_defaults(OffloadMechanism::CxlIoRingBuffer),
            48,
        )
        .run(5_000, rate, &service, 7);
        let p95_m2 = m2.latencies.percentile(0.95);
        let p95_rb = rb.latencies.percentile(0.95);
        assert!(
            p95_rb as f64 > 3.0 * p95_m2 as f64,
            "RB P95 {p95_rb} should dwarf M2func P95 {p95_m2}"
        );
    }

    #[test]
    fn saturation_bends_the_latency_curve() {
        let service = vec![770.0];
        let sim = OffloadSim::new(OffloadModel::with_defaults(OffloadMechanism::M2Func), 48);
        let mut low = sim.run(10_000, 1.0e6, &service, 3);
        let mut high = sim.run(10_000, 2.0e8, &service, 3);
        assert!(
            high.latencies.percentile(0.95) > 2 * low.latencies.percentile(0.95),
            "saturated P95 should blow up"
        );
    }
}
