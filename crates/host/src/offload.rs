//! NDP offloading mechanisms and their end-to-end cost (Fig. 5), plus the
//! open-loop request simulation behind the KVStore/DLRM tail-latency and
//! throughput experiments (Figs. 1b, 10b, 11a).
//!
//! Three mechanisms launch kernels on the device:
//!
//! * **M²func** (this paper): one CXL.mem write (launch) + one CXL.mem read
//!   (return value) — `z + 2x` end to end, with up to 48 concurrent kernels;
//! * **CXL.io ring buffer**: doorbell, command DMA, launch + error check —
//!   `z + 8y` (5y before, 3y after), concurrent kernels allowed;
//! * **CXL.io direct MMIO**: `z + 3y`, but a *single* outstanding kernel,
//!   since the device registers must not be overwritten (§II-C).

use m2ndp_cxl::{CxlIoModel, CxlLinkConfig};
use m2ndp_sim::rng::{exponential, seeded};
use m2ndp_sim::FHistogram;

/// A kernel-offload mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffloadMechanism {
    /// Memory-mapped functions over CXL.mem (§III-B).
    M2Func,
    /// Conventional ring buffer over CXL.io/PCIe.
    CxlIoRingBuffer,
    /// Direct device-register MMIO over CXL.io/PCIe.
    CxlIoDirect,
}

/// Latency/concurrency model for one mechanism.
#[derive(Debug, Clone)]
pub struct OffloadModel {
    mechanism: OffloadMechanism,
    link: CxlLinkConfig,
    io: CxlIoModel,
    max_concurrent: u32,
}

impl OffloadModel {
    /// Builds the model from the link/IO parameters in play.
    pub fn new(mechanism: OffloadMechanism, link: CxlLinkConfig, io: CxlIoModel) -> Self {
        let max_concurrent = match mechanism {
            OffloadMechanism::M2Func => 48,
            OffloadMechanism::CxlIoRingBuffer => 48,
            OffloadMechanism::CxlIoDirect => 1,
        };
        Self {
            mechanism,
            link,
            io,
            max_concurrent,
        }
    }

    /// Default-parameter model for a mechanism.
    pub fn with_defaults(mechanism: OffloadMechanism) -> Self {
        Self::new(
            mechanism,
            CxlLinkConfig::default_150ns(),
            CxlIoModel::default(),
        )
    }

    /// The mechanism.
    pub fn mechanism(&self) -> OffloadMechanism {
        self.mechanism
    }

    /// Host-side latency before the kernel starts executing (ns).
    pub fn pre_ns(&self) -> f64 {
        match self.mechanism {
            OffloadMechanism::M2Func => self.link.one_way_ns, // x
            OffloadMechanism::CxlIoRingBuffer => self.io.ring_buffer_pre_ns(),
            OffloadMechanism::CxlIoDirect => self.io.direct_pre_ns(),
        }
    }

    /// Latency after kernel completion until the host observes it (ns).
    pub fn post_ns(&self) -> f64 {
        match self.mechanism {
            OffloadMechanism::M2Func => self.link.one_way_ns, // x (sync read return)
            OffloadMechanism::CxlIoRingBuffer => self.io.ring_buffer_post_ns(),
            OffloadMechanism::CxlIoDirect => self.io.direct_post_ns(),
        }
    }

    /// Total communication overhead around one kernel (Fig. 5's totals
    /// minus z).
    pub fn overhead_ns(&self) -> f64 {
        self.pre_ns() + self.post_ns()
    }

    /// End-to-end latency of one kernel of runtime `z_ns`.
    pub fn end_to_end_ns(&self, z_ns: f64) -> f64 {
        z_ns + self.overhead_ns()
    }

    /// Maximum concurrently outstanding kernels.
    pub fn max_concurrent(&self) -> u32 {
        self.max_concurrent
    }
}

/// Open-loop offload simulation: Poisson request arrivals, each request
/// becomes one fine-grained NDP kernel; the device executes up to
/// `device_slots` kernels concurrently (or 1 for direct MMIO). Produces the
/// latency distribution for P95 reporting and the latency–throughput curves
/// of Fig. 11a.
#[derive(Debug)]
pub struct OffloadSim {
    model: OffloadModel,
    /// Concurrent kernels the device itself sustains.
    pub device_slots: u32,
}

/// Fraction of requests treated as warm-up and excluded from the
/// steady-state throughput window (the latency histogram keeps every
/// request: the warm-up phase is *under*-loaded, so including it can only
/// understate the tail, never inflate it).
pub const WARMUP_FRAC: f64 = 0.1;

/// A steady-state measurement window over one open-loop run, shared by
/// [`OffloadSim`] and the serving runtime ([`crate::serve`]) so the two
/// throughput definitions cannot drift apart.
#[derive(Debug, Clone, Copy)]
pub struct SteadyWindow {
    /// When the window opens (ns): the first measured request's arrival,
    /// or the last warm-up completion if the empty-system ramp is still
    /// draining (saturation).
    pub open: f64,
    /// When the window closes (ns): the last measured completion.
    pub close: f64,
    /// The measured request range `[start, end)` in arrival order (after
    /// the warm-up prefix, before the drain suffix).
    pub measured: (usize, usize),
    /// Measured completions per second over `[open, close]`; 0.0 when the
    /// window is empty or degenerate.
    pub throughput: f64,
}

/// Computes the steady window over parallel arrival/completion arrays in
/// arrival order: the first `warmup_frac` of requests are warm-up, the
/// last `drain_frac` are drain, and throughput counts the remaining
/// completions over `[open, close]` (see [`SteadyWindow`] field docs for
/// the boundary definitions).
///
/// # Panics
/// Panics if the arrays differ in length.
pub fn steady_window(
    arrivals: &[f64],
    completions: &[f64],
    warmup_frac: f64,
    drain_frac: f64,
) -> SteadyWindow {
    assert_eq!(arrivals.len(), completions.len());
    let n = arrivals.len();
    if n == 0 {
        return SteadyWindow {
            open: 0.0,
            close: 0.0,
            measured: (0, 0),
            throughput: 0.0,
        };
    }
    let warm = (((n as f64) * warmup_frac) as usize).min(n - 1);
    let drain = ((n as f64) * drain_frac) as usize;
    let end = n.saturating_sub(drain).max(warm);
    let warm_done = completions[..warm]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let open = arrivals[warm].max(warm_done);
    let close = completions[warm..end]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let throughput = if close > open {
        (end - warm) as f64 / ((close - open) * 1e-9)
    } else {
        0.0
    };
    SteadyWindow {
        open,
        close,
        measured: (warm, end),
        throughput,
    }
}

/// Result of one open-loop run.
#[derive(Debug)]
pub struct OffloadRunResult {
    /// End-to-end request latencies (ns, exact `observed - arrival` in
    /// `f64` — no integer quantization of the sub-ns queueing components).
    pub latencies: FHistogram,
    /// Steady-state throughput (requests/s), measured over the window that
    /// opens when the warm-up phase ([`WARMUP_FRAC`] of requests) is over —
    /// the first measured request's arrival, or the last warm-up completion
    /// if the system is still working through its ramp — and closes at the
    /// last measured completion. The warm-up exclusion keeps short runs
    /// from understating saturation throughput with the empty-system ramp;
    /// measuring to the last *completion* (not arrival) keeps the count
    /// and the interval consistent during drain.
    pub throughput: f64,
    /// The `[open, close]` measurement window (ns) behind `throughput`.
    pub steady_window: (f64, f64),
}

impl OffloadSim {
    /// Creates the simulation.
    pub fn new(model: OffloadModel, device_slots: u32) -> Self {
        Self {
            model,
            device_slots,
        }
    }

    /// Runs `n_requests` arriving at `rate_per_sec` (Poisson), each with a
    /// kernel service time drawn from `service_ns` (cycled). Deterministic
    /// under `seed`.
    pub fn run(
        &self,
        n_requests: usize,
        rate_per_sec: f64,
        service_ns: &[f64],
        seed: u64,
    ) -> OffloadRunResult {
        let mut rng = seeded(seed);
        let mean_gap_ns = 1e9 / rate_per_sec;
        let mut arrivals = Vec::with_capacity(n_requests);
        let mut t = 0.0f64;
        for _ in 0..n_requests {
            t += exponential(&mut rng, mean_gap_ns);
            arrivals.push(t);
        }
        self.run_with_arrivals(&arrivals, service_ns)
    }

    /// Runs an explicit arrival trace (ns, non-decreasing) against the slot
    /// pool. The event clock stays in `f64` ns end to end: slot-free times
    /// are never rounded, so queueing delays keep their sub-ns components
    /// even at arrival rates where they accumulate across thousands of
    /// requests.
    ///
    /// Per request: `start = max(slot_free, arrival) + pre_ns` — the
    /// pre-launch phase (doorbell/DMA for the ring buffer, the launch store
    /// for M²func) is charged *after* admission, so it cannot overlap the
    /// queue wait; `observed = start + service + post_ns`. Direct MMIO
    /// holds its slot until `observed` (the device register must not be
    /// overwritten before the host reads the result back, §II-C); the
    /// other mechanisms free the slot at kernel completion.
    ///
    /// # Panics
    /// Panics if `service_ns` is empty or `arrivals` is not sorted.
    pub fn run_with_arrivals(&self, arrivals: &[f64], service_ns: &[f64]) -> OffloadRunResult {
        assert!(!service_ns.is_empty());
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival trace must be non-decreasing"
        );
        let concurrency = self.model.max_concurrent().min(self.device_slots).max(1) as usize;

        // Server pool of `concurrency` kernel slots; FIFO admission. The
        // earliest-free slot (lowest index on ties) serves each request.
        let mut slot_free = vec![0.0f64; concurrency];
        let mut latencies = FHistogram::new();
        let mut completions = Vec::with_capacity(arrivals.len());
        for (i, &arr) in arrivals.iter().enumerate() {
            let slot = slot_free
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(s, _)| s)
                .expect("pool is non-empty");
            let start = slot_free[slot].max(arr) + self.model.pre_ns();
            let service = service_ns[i % service_ns.len()];
            let kernel_done = start + service;
            let observed = kernel_done + self.model.post_ns();
            slot_free[slot] = if self.model.mechanism() == OffloadMechanism::CxlIoDirect {
                observed
            } else {
                kernel_done
            };
            latencies.record(observed - arr);
            completions.push(observed);
        }

        // Steady-state throughput: drop the warm-up prefix (no drain
        // exclusion — this closed-form sim runs every request to
        // completion and the tail is part of the figure).
        let window = steady_window(arrivals, &completions, WARMUP_FRAC, 0.0);
        OffloadRunResult {
            latencies,
            throughput: window.throughput,
            steady_window: (window.open, window.close),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_overheads_match_paper_math() {
        // x = 75 ns, y = 500 ns → M²func 150 ns, RB 4000 ns, DR 1500 ns.
        let m2 = OffloadModel::with_defaults(OffloadMechanism::M2Func);
        let rb = OffloadModel::with_defaults(OffloadMechanism::CxlIoRingBuffer);
        let dr = OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect);
        assert!((m2.overhead_ns() - 150.0).abs() < 1e-9);
        assert!((rb.overhead_ns() - 4000.0).abs() < 1e-9);
        assert!((dr.overhead_ns() - 1500.0).abs() < 1e-9);
        // Fig. 5 example: z = 6.4 µs → communication reduced 33–75 %.
        let z = 6400.0;
        assert!(m2.end_to_end_ns(z) < dr.end_to_end_ns(z));
        assert!(dr.end_to_end_ns(z) < rb.end_to_end_ns(z));
        let comm_reduction_vs_rb = 1.0 - m2.overhead_ns() / rb.overhead_ns();
        assert!(comm_reduction_vs_rb > 0.9);
    }

    #[test]
    fn direct_mmio_serializes_kernels() {
        let dr = OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect);
        assert_eq!(dr.max_concurrent(), 1);
        let m2 = OffloadModel::with_defaults(OffloadMechanism::M2Func);
        assert_eq!(m2.max_concurrent(), 48);
    }

    #[test]
    fn m2func_sustains_higher_throughput_than_direct() {
        let service = vec![770.0]; // 0.77 µs P95 kernel runtime (§IV-C)
        let rate = 1.0e7; // 10M req/s offered
        let m2 = OffloadSim::new(OffloadModel::with_defaults(OffloadMechanism::M2Func), 48)
            .run(20_000, rate, &service, 42);
        let dr = OffloadSim::new(
            OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect),
            48,
        )
        .run(20_000, rate, &service, 42);
        assert!(
            m2.throughput > 10.0 * dr.throughput,
            "M2func {:.2e} vs direct {:.2e}",
            m2.throughput,
            dr.throughput
        );
    }

    #[test]
    fn ring_buffer_inflates_tail_latency_at_low_load() {
        let service = vec![770.0];
        let rate = 1.0e5; // light load: latency ≈ overhead + service
        let mut m2 = OffloadSim::new(OffloadModel::with_defaults(OffloadMechanism::M2Func), 48)
            .run(5_000, rate, &service, 7);
        let mut rb = OffloadSim::new(
            OffloadModel::with_defaults(OffloadMechanism::CxlIoRingBuffer),
            48,
        )
        .run(5_000, rate, &service, 7);
        let p95_m2 = m2.latencies.percentile(0.95);
        let p95_rb = rb.latencies.percentile(0.95);
        assert!(
            p95_rb > 3.0 * p95_m2,
            "RB P95 {p95_rb} should dwarf M2func P95 {p95_m2}"
        );
    }

    #[test]
    fn saturation_bends_the_latency_curve() {
        let service = vec![770.0];
        let sim = OffloadSim::new(OffloadModel::with_defaults(OffloadMechanism::M2Func), 48);
        let mut low = sim.run(10_000, 1.0e6, &service, 3);
        let mut high = sim.run(10_000, 2.0e8, &service, 3);
        assert!(
            high.latencies.percentile(0.95) > 2.0 * low.latencies.percentile(0.95),
            "saturated P95 should blow up"
        );
    }

    /// Regression (sub-ns precision): with a fractional-ns service time and
    /// back-to-back arrivals, the single direct-MMIO slot advances by
    /// exactly `pre + service + post` per request. The old implementation
    /// quantized slot-free times with `.ceil() as u64`, drifting the clock
    /// by up to 1 ns per request — thousands of ns over this run.
    #[test]
    fn f64_clock_accrues_no_quantization_drift() {
        let dr = OffloadModel::with_defaults(OffloadMechanism::CxlIoDirect);
        let (pre, post) = (dr.pre_ns(), dr.post_ns());
        let service = 100.3;
        let n = 4000;
        let arrivals = vec![0.0; n];
        let res = OffloadSim::new(dr, 1).run_with_arrivals(&arrivals, &[service]);
        // Request i starts at i*(pre+service+post) + pre and is observed a
        // full period later; all arrivals are at t=0.
        let period = pre + service + post;
        let expect_max = n as f64 * period;
        let got_max = res.latencies.max();
        assert!(
            (got_max - expect_max).abs() < 1e-6,
            "drift detected: max latency {got_max} vs exact {expect_max}"
        );
        let expect_mean = period * (n as f64 + 1.0) / 2.0;
        assert!(
            (res.latencies.mean() - expect_mean).abs() / expect_mean < 1e-12,
            "mean {} vs exact {expect_mean}",
            res.latencies.mean()
        );
    }

    /// Regression (pre-launch overlap): the ring buffer's doorbell/DMA
    /// phase must start only after a kernel slot frees up, not overlap the
    /// queue wait.
    #[test]
    fn pre_launch_overhead_is_charged_after_admission() {
        let rb = OffloadModel::with_defaults(OffloadMechanism::CxlIoRingBuffer);
        let (pre, post) = (rb.pre_ns(), rb.post_ns());
        let service = 1000.0;
        // Two simultaneous arrivals, one slot: the second request queues
        // behind the first kernel, then pays its own full pre phase.
        let res = OffloadSim::new(rb, 1).run_with_arrivals(&[0.0, 0.0], &[service]);
        let first = pre + service + post;
        let second = (pre + service) + pre + service + post;
        let mut sorted = res.latencies.samples().to_vec();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - first).abs() < 1e-9, "first: {sorted:?}");
        assert!(
            (sorted[1] - second).abs() < 1e-9,
            "second must pay pre after the queue wait: {sorted:?} vs {second}"
        );
    }

    /// Regression (throughput window): a short saturated run must report
    /// the steady-state service rate, not the figure diluted by measuring
    /// from t = 0 across the empty-system ramp.
    #[test]
    fn throughput_is_measured_over_the_steady_window() {
        let m2 = OffloadModel::with_defaults(OffloadMechanism::M2Func);
        let (pre, _post) = (m2.pre_ns(), m2.post_ns());
        let service = 770.0;
        // Saturation: all arrivals at t=0, 48 slots each cycling every
        // pre+service ns.
        let res = OffloadSim::new(m2.clone(), 48).run_with_arrivals(&[0.0; 6000], &[service]);
        let steady = 48.0 / ((pre + service) * 1e-9);
        assert!(
            (res.throughput - steady).abs() / steady < 0.02,
            "windowed throughput {:.3e} vs steady-state {steady:.3e}",
            res.throughput
        );
        let (open, close) = res.steady_window;
        assert!(close > open);
    }

    #[test]
    fn unsorted_trace_is_rejected() {
        let m2 = OffloadModel::with_defaults(OffloadMechanism::M2Func);
        let sim = OffloadSim::new(m2, 48);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run_with_arrivals(&[10.0, 5.0], &[100.0])
        }));
        assert!(result.is_err(), "unsorted arrivals must panic");
    }
}
