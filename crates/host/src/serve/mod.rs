//! Event-driven, multi-tenant request serving over *real* device
//! simulators — the runtime behind the fig11c latency–throughput curves
//! and the fig15 elastic-fleet study.
//!
//! Where [`crate::offload::OffloadSim`] replays a measured service-time
//! distribution through a closed-form slot pool, this runtime drives the
//! cycle-level simulators themselves: every admitted request becomes an
//! actual kernel launch on a [`CxlM2ndpDevice`] — through the full M²func
//! wire protocol ([`m2ndp_core::m2func`]) when the mechanism is M²func —
//! or is routed through the `CxlSwitch`/`HdmRouter` to the owning device
//! of a [`Fleet`], with the launch store charged on the switch ports.
//!
//! The pieces:
//!
//! * **Tenants** ([`TenantSpec`]) — independent open-loop arrival streams
//!   (Poisson, bursty Poisson, or a cycled trace of inter-arrival gaps),
//!   each with its own seed, request budget, SLO threshold, and priority.
//! * **Scheduling** ([`Scheduler`], [`SchedulerKind`]) — a pluggable
//!   routing/admission policy decides which device serves each request:
//!   the default [`SchedulerKind::StaticFifo`] reproduces the historical
//!   home-routed FIFO bit-for-bit, while load-aware policies route
//!   against the live [`m2ndp_core::FleetView`] (see
//!   [`scheduler`](self::scheduler#two-execution-paths) for the two
//!   execution paths and their determinism rules).
//! * **Autoscaling** ([`AutoscaleConfig`]) — an optional control loop
//!   grows and shrinks the *active* device set against a P95 SLO target;
//!   draining devices stop admitting, finish their in-flight kernels,
//!   and park, with per-device active time integrated into
//!   [`ServeReport::device_time_ns`].
//! * **Admission** — per-device FIFO queues feeding a slot pool of
//!   `min(mechanism.max_concurrent, device_slots)` kernel slots; the
//!   pre-launch phase is charged *after* admission (the Fig. 5 semantics —
//!   a doorbell/DMA cannot overlap the queue wait), and direct MMIO holds
//!   its single slot until the host has read the result back (§II-C).
//! * **Event clock** — `f64` nanoseconds end to end
//!   ([`m2ndp_sim::FEventQueue`]); the only integer quantization is the
//!   switch's own cycle-level model, whose per-launch skew is converted
//!   back to ns and added to the pre phase.
//! * **Measurement** — warm-up and drain request fractions are excluded
//!   from the steady window; per-tenant latency [`FHistogram`]s and SLO
//!   counters cover the measured window only.
//!
//! Everything is deterministic: arrivals flow from tenant seeds, ties in
//! the event queue break by insertion order, and the device simulators are
//! themselves deterministic, so a serving run is reproducible
//! bit-for-bit at any sweep parallelism.
//!
//! **Shard-parallel execution.** With a placement-pure scheduler and a
//! fixed fleet, a request's life touches exactly one device: routing is a
//! pure function of its key, admission queues and kernel slots are
//! per-device, and the switch charges launch stores on per-port gates.
//! The runtime therefore decomposes into one independent event loop per
//! device — generated and routed serially up front, then advanced
//! concurrently on the fleet's shard pool ([`Fleet::with_shards`], worker
//! count = [`Fleet::parallelism`], knob: `M2NDP_FLEET_JOBS`) and merged
//! back in global arrival order. Per-device event streams, tie-breaking,
//! and simulator state are identical to the historical single-threaded
//! loop, so reports are bit-identical at every parallelism setting.
//! Dynamic schedulers and autoscaled runs instead use a single global
//! event loop, which those knobs never touch — equally deterministic.
//!
//! [`FHistogram`]: m2ndp_sim::FHistogram

use std::collections::VecDeque;

use m2ndp_core::fleet::{Fleet, FleetShard};
use m2ndp_core::{CxlM2ndpDevice, KernelId, KernelInstanceId, LaunchArgs};
use m2ndp_sim::rng::{exponential, seeded, Zipf};
use m2ndp_sim::trace::{JsonSink, TraceEvent};
use m2ndp_sim::{FEventQueue, Frequency};
use m2ndp_workloads::kvstore;

use crate::offload::{OffloadMechanism, OffloadModel};

pub mod autoscale;
mod report;
pub mod scheduler;

pub use autoscale::{AutoscaleConfig, ScaleEvent};
pub use report::{ReqRecord, ServeReport, TenantReport};
pub use scheduler::{ReqView, Scheduler, SchedulerKind};

/// How a tenant's requests arrive.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// Open-loop Poisson arrivals at a fixed offered rate.
    Poisson {
        /// Offered load (requests per second).
        rate_per_sec: f64,
    },
    /// Bursty open-loop arrivals: a Poisson process at
    /// `rate_per_sec * burst_factor` compressed into the first
    /// `1 / burst_factor` of every `period_ns` window, the rest of the
    /// window silent. The long-run mean rate is exactly `rate_per_sec`
    /// (the process is an ordinary Poisson stream on a warped clock), so
    /// burst runs stay comparable to Poisson runs at the same rate;
    /// `burst_factor = 1` degenerates to [`Arrival::Poisson`].
    Burst {
        /// Long-run offered load (requests per second).
        rate_per_sec: f64,
        /// Peak-to-mean ratio inside a burst (must be `>= 1`).
        burst_factor: f64,
        /// Burst repetition period (ns).
        period_ns: f64,
    },
    /// A recorded trace of inter-arrival gaps (ns), cycled to cover the
    /// tenant's request budget.
    Trace {
        /// The gap sequence; must be non-empty and non-negative.
        gaps_ns: Vec<f64>,
    },
}

/// One tenant: an independent open-loop request stream.
///
/// Construct with the builders ([`TenantSpec::poisson`] /
/// [`TenantSpec::burst`] / [`TenantSpec::trace`] plus the chainable
/// setters); the fields stay public for back-compat and direct
/// inspection.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (also the report key).
    pub name: String,
    /// The arrival process.
    pub arrival: Arrival,
    /// Number of requests this tenant issues.
    pub requests: usize,
    /// Latency SLO (ns); measured-window completions above it count as
    /// violations.
    pub slo_ns: f64,
    /// Seed for the tenant's arrival and key streams.
    pub seed: u64,
    /// Scheduling priority (0 = highest). Only priority-aware schedulers
    /// ([`SchedulerKind::PrioritySlo`]) consult it; everything else
    /// treats tenants equally.
    pub priority: u8,
}

impl TenantSpec {
    /// Defaults shared by the builders: 1000 requests, a 5 µs SLO
    /// (the fig11c serving SLO), seed 0, priority 0.
    fn with_arrival(name: impl Into<String>, arrival: Arrival) -> Self {
        Self {
            name: name.into(),
            arrival,
            requests: 1000,
            slo_ns: 5_000.0,
            seed: 0,
            priority: 0,
        }
    }

    /// An open-loop Poisson tenant at `rate_per_sec` offered load.
    /// Defaults: 1000 requests, 5 µs SLO, seed 0, priority 0 — override
    /// with the chainable setters.
    pub fn poisson(name: impl Into<String>, rate_per_sec: f64) -> Self {
        Self::with_arrival(name, Arrival::Poisson { rate_per_sec })
    }

    /// A bursty tenant (see [`Arrival::Burst`]): mean `rate_per_sec`,
    /// bursts of `burst_factor`× intensity every `period_ns`. Same
    /// defaults as [`TenantSpec::poisson`].
    pub fn burst(
        name: impl Into<String>,
        rate_per_sec: f64,
        burst_factor: f64,
        period_ns: f64,
    ) -> Self {
        Self::with_arrival(
            name,
            Arrival::Burst {
                rate_per_sec,
                burst_factor,
                period_ns,
            },
        )
    }

    /// A tenant replaying a recorded trace of inter-arrival gaps (ns),
    /// cycled over its request budget. Same defaults as
    /// [`TenantSpec::poisson`].
    pub fn trace(name: impl Into<String>, gaps_ns: Vec<f64>) -> Self {
        Self::with_arrival(name, Arrival::Trace { gaps_ns })
    }

    /// Sets the number of requests this tenant issues (default 1000).
    #[must_use]
    pub fn requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Sets the latency SLO in ns (default 5000, the fig11c serving SLO).
    #[must_use]
    pub fn slo_ns(mut self, slo_ns: f64) -> Self {
        self.slo_ns = slo_ns;
        self
    }

    /// Sets the seed for the tenant's arrival and key streams (default 0;
    /// give each tenant a distinct seed for independent streams).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling priority (default 0 = highest; larger is
    /// lower priority).
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

/// One tenant's arrival-time generator. Wraps the spec's arrival process
/// so [`run`] and [`arrival_times`] produce identical streams: Poisson
/// and Trace accumulate gaps; Burst runs a homogeneous Poisson process on
/// a warped clock and maps each warped instant into the bursty wall
/// clock (monotone, since `period_ns >= period_ns / burst_factor`).
struct ArrivalGen<'a> {
    spec: &'a TenantSpec,
    rng: m2ndp_sim::rng::StdRng,
    t_ns: f64,
    warped_ns: f64,
}

impl<'a> ArrivalGen<'a> {
    fn new(spec: &'a TenantSpec) -> Self {
        Self {
            spec,
            rng: seeded(spec.seed),
            t_ns: 0.0,
            warped_ns: 0.0,
        }
    }

    /// The arrival time (ns) of request `seq`. Must be called with
    /// consecutive `seq` starting at 0.
    fn next(&mut self, seq: usize) -> f64 {
        match &self.spec.arrival {
            Arrival::Poisson { rate_per_sec } => {
                assert!(*rate_per_sec > 0.0, "tenant rate must be positive");
                let gap = exponential(&mut self.rng, 1e9 / rate_per_sec);
                assert!(gap >= 0.0 && gap.is_finite(), "bad inter-arrival gap");
                self.t_ns += gap;
            }
            Arrival::Trace { gaps_ns } => {
                assert!(!gaps_ns.is_empty(), "trace tenants need gaps");
                let gap = gaps_ns[seq % gaps_ns.len()];
                assert!(gap >= 0.0 && gap.is_finite(), "bad inter-arrival gap");
                self.t_ns += gap;
            }
            Arrival::Burst {
                rate_per_sec,
                burst_factor,
                period_ns,
            } => {
                assert!(*rate_per_sec > 0.0, "tenant rate must be positive");
                assert!(
                    *burst_factor >= 1.0 && burst_factor.is_finite(),
                    "burst_factor must be >= 1"
                );
                assert!(
                    *period_ns > 0.0 && period_ns.is_finite(),
                    "burst period must be positive"
                );
                let gap = exponential(&mut self.rng, 1e9 / (rate_per_sec * burst_factor));
                assert!(gap >= 0.0 && gap.is_finite(), "bad inter-arrival gap");
                self.warped_ns += gap;
                // Each `period_ns / burst_factor` of warped time maps to
                // one `period_ns` wall window: the burst at its front.
                let window = period_ns / burst_factor;
                let k = (self.warped_ns / window).floor();
                self.t_ns = k * period_ns + (self.warped_ns - k * window);
            }
        }
        self.t_ns
    }
}

/// The arrival times (ns) a tenant spec generates, in order — exactly the
/// stream [`run`] feeds the runtime (same seed, same float operations).
/// Exposed so arrival processes can be tested and characterized without
/// running simulators.
pub fn arrival_times(spec: &TenantSpec) -> Vec<f64> {
    let mut arrivals = ArrivalGen::new(spec);
    (0..spec.requests).map(|seq| arrivals.next(seq)).collect()
}

/// Runtime parameters shared by all tenants.
///
/// Construct with [`ServeConfig::with_defaults`] plus the chainable
/// setters; the fields stay public for back-compat.
///
/// # Invariants
///
/// * `warmup_frac` and `drain_frac` are fractions in `[0, 1)` whose sum
///   must leave a non-empty measured window (`warmup_frac + drain_frac
///   < 1`).
/// * The effective per-device slot pool is
///   `min(model.max_concurrent(), device_slots)`, floored at 1; direct
///   MMIO's single architectural slot is enforced by the model's
///   `max_concurrent`, not by `device_slots`.
/// * `autoscale` requires `max_devices <=` the backend's device count
///   and (on multi-device backends) a replicated workload — see
///   [`ServeWorkload::replicated`]. The same replication requirement
///   applies whenever `scheduler` is load-aware
///   ([`SchedulerKind::is_dynamic`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The offload mechanism (launch/return overheads + concurrency cap).
    pub model: OffloadModel,
    /// Kernel slots the device itself sustains (48 in Table IV); the
    /// effective pool is `min(model.max_concurrent(), device_slots)`.
    pub device_slots: u32,
    /// Fraction of requests (in global arrival order) treated as warm-up
    /// and excluded from the measured window.
    pub warmup_frac: f64,
    /// Fraction of requests at the tail excluded as drain.
    pub drain_frac: f64,
    /// Record a structured trace of the run (see [`m2ndp_sim::trace`]):
    /// per-device sinks capture kernel/wave/L2/DRAM/switch events and the
    /// report carries them plus per-request phase spans (and, on the
    /// dynamic path, routing and scaling instants). Off by default —
    /// tracing only observes, so results are identical either way.
    pub trace: bool,
    /// The routing/admission policy (default
    /// [`SchedulerKind::StaticFifo`], the historical behaviour).
    pub scheduler: SchedulerKind,
    /// Optional SLO-driven fleet autoscaling (default off = the fleet
    /// size is fixed for the whole run).
    pub autoscale: Option<AutoscaleConfig>,
}

impl ServeConfig {
    /// Default-parameter config for a mechanism: 48 device slots, 10%
    /// warm-up, 5% drain, tracing off, static FIFO scheduling, no
    /// autoscaling.
    pub fn with_defaults(mechanism: OffloadMechanism) -> Self {
        Self {
            model: OffloadModel::with_defaults(mechanism),
            device_slots: 48,
            warmup_frac: crate::offload::WARMUP_FRAC,
            drain_frac: 0.05,
            trace: false,
            scheduler: SchedulerKind::StaticFifo,
            autoscale: None,
        }
    }

    /// Sets the device kernel-slot cap (default 48, Table IV).
    #[must_use]
    pub fn device_slots(mut self, device_slots: u32) -> Self {
        self.device_slots = device_slots;
        self
    }

    /// Sets the warm-up fraction excluded from measurement (default 0.1).
    #[must_use]
    pub fn warmup_frac(mut self, warmup_frac: f64) -> Self {
        self.warmup_frac = warmup_frac;
        self
    }

    /// Sets the drain-tail fraction excluded from measurement
    /// (default 0.05).
    #[must_use]
    pub fn drain_frac(mut self, drain_frac: f64) -> Self {
        self.drain_frac = drain_frac;
        self
    }

    /// Turns structured tracing on or off (default off).
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the scheduling policy (default
    /// [`SchedulerKind::StaticFifo`]). Load-aware kinds require a
    /// replicated workload on multi-device backends.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables SLO-driven autoscaling (default off). Implies the global
    /// (serial) execution path and, on multi-device backends, a
    /// replicated workload.
    #[must_use]
    pub fn autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }
}

/// One generated request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Issuing tenant (also the ASID on the M²func wire).
    pub tenant: u16,
    /// Per-tenant sequence number (arrival order within the tenant).
    pub seq: u64,
    /// Arrival time (ns).
    pub arrival_ns: f64,
    /// Workload key (e.g. the KV item id); determines the owning device.
    pub key: u64,
}

/// What the runtime needs from a workload: keys, routing, launches, and
/// functional verification.
///
/// Key sampling happens once, serially, before anything runs; the
/// launch/verify methods take `&self` because the runtime calls them from
/// concurrent per-device shards (implementations must derive launches
/// purely from the request and the per-device state built at setup).
pub trait ServeWorkload {
    /// Samples the key of request `seq` of `tenant` from the workload's key
    /// distribution (`rng` is the tenant's dedicated key stream).
    fn sample_key(&mut self, tenant: u16, rng: &mut m2ndp_sim::rng::StdRng) -> u64;

    /// Fleet-global address owning `key`'s data (what the `HdmRouter`
    /// routes on). Ignored by single-device backends.
    fn route_addr(&self, key: u64, devices: usize) -> u64;

    /// The device-local launch that serves `req` on device `dev`.
    fn launch_args(&self, req: &Request, dev: usize) -> LaunchArgs;

    /// Functional check after the request's kernel ran.
    ///
    /// # Errors
    /// Describes the mismatch.
    fn verify(&self, req: &Request, dev: usize, device: &CxlM2ndpDevice) -> Result<(), String>;

    /// Whether every device holds the full data set, so *any* device can
    /// serve *any* key (default `false` = key-sharded). Load-aware
    /// scheduling, work stealing, and autoscaling all require `true` on
    /// multi-device backends, because they place requests off the key's
    /// home device.
    fn replicated(&self) -> bool {
        false
    }
}

/// The simulators the runtime serves against.
#[derive(Debug)]
pub enum ServeBackend {
    /// One standalone device; the launch store crosses only the device's
    /// own CXL link (already inside the mechanism's `pre_ns`).
    Device(Box<CxlM2ndpDevice>),
    /// N devices behind the CXL switch; every launch is routed through the
    /// `HdmRouter` and charged on the switch ports.
    Fleet(Box<Fleet>),
}

impl ServeBackend {
    /// Number of devices.
    pub fn devices(&self) -> usize {
        match self {
            ServeBackend::Device(_) => 1,
            ServeBackend::Fleet(f) => f.len(),
        }
    }

    /// The device clock (all fleet devices share one domain).
    pub fn clock(&self) -> Frequency {
        match self {
            ServeBackend::Device(d) => d.config().engine.freq,
            ServeBackend::Fleet(f) => f.clock(),
        }
    }

    /// Immutable access to device `i`.
    pub fn device(&self, i: usize) -> &CxlM2ndpDevice {
        match self {
            ServeBackend::Device(d) => d,
            ServeBackend::Fleet(f) => f.device(i),
        }
    }

    /// Mutable access to device `i`.
    pub fn device_mut(&mut self, i: usize) -> &mut CxlM2ndpDevice {
        match self {
            ServeBackend::Device(d) => d,
            ServeBackend::Fleet(f) => f.device_mut(i),
        }
    }

    /// The fleet, when this backend is one (switch counters for tests).
    pub fn fleet(&self) -> Option<&Fleet> {
        match self {
            ServeBackend::Device(_) => None,
            ServeBackend::Fleet(f) => Some(f),
        }
    }

    /// Attaches one buffering trace sink per device.
    fn attach_tracers(&mut self) {
        match self {
            ServeBackend::Device(d) => d.set_tracer(0, Box::new(JsonSink::new())),
            ServeBackend::Fleet(f) => f.set_tracers(|_| Box::new(JsonSink::new())),
        }
    }

    /// Detaches every sink, returning all device events merged in device
    /// index order (deterministic at any shard parallelism).
    fn collect_traces(&mut self) -> Vec<TraceEvent> {
        match self {
            ServeBackend::Device(d) => d.take_trace(),
            ServeBackend::Fleet(f) => f.take_traces(),
        }
    }
}

/// Runs `tenants` against `backend`, one kernel launch per request.
///
/// Admission is event-driven: arrivals enqueue into a device queue picked
/// by [`ServeConfig::scheduler`] (the default routes to the key's owning
/// device); whenever the device has a free kernel slot a queued request is
/// admitted, pays the mechanism's pre-launch phase (plus, in fleets, the
/// switch's cycle-accurate delivery skew for the launch store), runs its
/// kernel *on the device simulator* to obtain the real service time, and
/// is observed by the host `post_ns` after kernel completion.
///
/// With a placement-pure scheduler and no autoscaling, the independent
/// per-device simulations advance concurrently on the fleet's shard pool
/// ([`Fleet::parallelism`] workers); the report is bit-identical at every
/// worker count (see the module docs). Load-aware schedulers and
/// autoscaled runs use the global serial loop instead
/// ([`scheduler`]) — equally deterministic.
///
/// # Panics
/// Panics on malformed tenant specs (empty trace, non-positive rate), on
/// launch rejections from the device, on functional verification
/// failures — a serving run that drops requests is a broken experiment,
/// not a data point — and on dynamic scheduling or autoscaling over a
/// non-replicated multi-device workload.
pub fn run<W: ServeWorkload + Sync>(
    backend: &mut ServeBackend,
    workload: &mut W,
    cfg: &ServeConfig,
    tenants: &[TenantSpec],
) -> ServeReport {
    let ndev = backend.devices();
    let clock = backend.clock();
    let slots = cfg.model.max_concurrent().min(cfg.device_slots).max(1);
    if cfg.trace {
        backend.attach_tracers();
    }

    // ---- generate every tenant's arrival + key stream ----
    let mut requests: Vec<Request> = Vec::new();
    for (t, spec) in tenants.iter().enumerate() {
        let mut arrivals = ArrivalGen::new(spec);
        let mut key_rng = seeded(spec.seed ^ 0x4B45_5953); // "KEYS"
        for seq in 0..spec.requests {
            let arrival_ns = arrivals.next(seq);
            requests.push(Request {
                tenant: t as u16,
                seq: seq as u64,
                arrival_ns,
                key: workload.sample_key(t as u16, &mut key_rng),
            });
        }
    }
    // Global arrival order; ties break by (tenant, seq) so merged streams
    // stay deterministic.
    requests.sort_by(|a, b| {
        a.arrival_ns
            .total_cmp(&b.arrival_ns)
            .then(a.tenant.cmp(&b.tenant))
            .then(a.seq.cmp(&b.seq))
    });
    let n = requests.len();

    // Load-aware scheduling and elastic fleets route against live state,
    // so they take the global serial loop.
    if cfg.scheduler.is_dynamic() || cfg.autoscale.is_some() {
        return scheduler::run_dynamic(backend, &*workload, cfg, tenants, requests);
    }

    // ---- route every request to its owning device (serial, so each
    // per-device stream inherits the global arrival order) ----
    let mut shard_requests: Vec<Vec<usize>> = vec![Vec::new(); ndev];
    for (i, r) in requests.iter().enumerate() {
        let dev = match &*backend {
            ServeBackend::Device(_) => 0,
            ServeBackend::Fleet(fleet) => {
                let addr = workload.route_addr(r.key, ndev);
                fleet
                    .router()
                    .device_of(addr)
                    .expect("workload routes inside the fleet HDM")
            }
        };
        shard_requests[dev].push(i);
    }

    // ---- independent per-device event loops, shards on the pool ----
    let ctx = ShardCtx {
        requests: &requests,
        workload: &*workload,
        cfg,
        clock,
        slots,
    };
    let outcomes: Vec<ShardOutcome> = match backend {
        ServeBackend::Device(device) => vec![simulate_shard(
            &ctx,
            0,
            &shard_requests[0],
            ShardSim::Standalone(device),
        )],
        ServeBackend::Fleet(fleet) => {
            let jobs = fleet.parallelism();
            fleet.with_shards(jobs, |shard| {
                let dev = shard.index();
                simulate_shard(&ctx, dev, &shard_requests[dev], ShardSim::Fleet(shard))
            })
        }
    };

    // ---- merge shard outcomes back into global arrival order ----
    let mut records: Vec<Option<ReqRecord>> = vec![None; n];
    let mut max_outstanding = vec![0u32; ndev];
    let mut launches = 0u64;
    for (dev, outcome) in outcomes.into_iter().enumerate() {
        max_outstanding[dev] = outcome.max_outstanding;
        launches += outcome.launches;
        for (i, rec) in outcome.records {
            records[i] = Some(rec);
        }
    }
    let records: Vec<ReqRecord> = records
        .into_iter()
        .map(|r| r.expect("every request completes"))
        .collect();

    let aux = report::RunAux {
        max_outstanding,
        launches,
        device_time_ns: None,
        scale_events: Vec::new(),
        route_events: false,
    };
    report::finish_run(backend, cfg, tenants, records, aux)
}

/// Read-only context shared by every device shard; pool workers only read
/// it (requests are plain data, the workload's launch/verify methods take
/// `&self`).
struct ShardCtx<'a, W: ?Sized> {
    requests: &'a [Request],
    workload: &'a W,
    cfg: &'a ServeConfig,
    clock: Frequency,
    slots: u32,
}

/// The two simulator shapes a shard drives: a standalone device (launch
/// store already inside the mechanism's `pre_ns`) or one fleet shard
/// (launch store charged on the shard's switch-port lane).
enum ShardSim<'a, 'b> {
    Standalone(&'a mut CxlM2ndpDevice),
    Fleet(&'a mut FleetShard<'b>),
}

impl ShardSim<'_, '_> {
    fn device_mut(&mut self) -> &mut CxlM2ndpDevice {
        match self {
            ShardSim::Standalone(device) => device,
            ShardSim::Fleet(shard) => shard.device_mut(),
        }
    }
}

/// What one device shard produced: its request records (tagged with the
/// global arrival-order index for the merge), peak outstanding kernels,
/// and launch count.
struct ShardOutcome {
    records: Vec<(usize, ReqRecord)>,
    max_outstanding: u32,
    launches: u64,
}

/// One device's event-driven admission loop — exactly the historical
/// global loop restricted to this device's arrivals: FIFO queue, slot
/// pool, launch store (lane-charged in fleets), kernel on the simulator,
/// functional verification, slot release at kernel completion (direct
/// MMIO: at host observation). Arrivals are pre-scheduled before any
/// `SlotFree`, so equal-time ties break identically to the global queue.
fn simulate_shard<W: ServeWorkload + ?Sized>(
    ctx: &ShardCtx<'_, W>,
    dev: usize,
    idxs: &[usize],
    mut sim: ShardSim<'_, '_>,
) -> ShardOutcome {
    let (pre, post) = (ctx.cfg.model.pre_ns(), ctx.cfg.model.post_ns());
    let mechanism = ctx.cfg.model.mechanism();
    let direct = mechanism == OffloadMechanism::CxlIoDirect;
    enum Ev {
        Arrive(usize),
        SlotFree,
    }
    let mut events: FEventQueue<Ev> = FEventQueue::new();
    for &i in idxs {
        events.schedule(ctx.requests[i].arrival_ns, Ev::Arrive(i));
    }
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut free = ctx.slots;
    let mut outstanding = 0u32;
    let mut max_outstanding = 0u32;
    let mut launches = 0u64;
    let mut records: Vec<(usize, ReqRecord)> = Vec::with_capacity(idxs.len());

    while let Some((now, ev)) = events.pop() {
        match ev {
            Ev::Arrive(i) => queue.push_back(i),
            Ev::SlotFree => {
                free += 1;
                outstanding -= 1;
            }
        }
        // Admit as long as the device has free slots (FIFO).
        while free > 0 {
            let Some(i) = queue.pop_front() else {
                break;
            };
            free -= 1;
            outstanding += 1;
            max_outstanding = max_outstanding.max(outstanding);
            let req = ctx.requests[i];
            let args = ctx.workload.launch_args(&req, dev);

            // Launch on the simulator; fleet shards charge the store on
            // their switch-port lane and convert its cycle-level skew back
            // to ns.
            let (inst, switch_skew_ns) = match &mut sim {
                ShardSim::Standalone(device) => (
                    m2func_or_direct_launch(device, mechanism, req.tenant, args),
                    0.0,
                ),
                ShardSim::Fleet(shard) => {
                    let issue = ctx.clock.cycles_from_ns(now);
                    let (inst, arrival) = if mechanism == OffloadMechanism::M2Func {
                        shard
                            .m2func_launch(issue, req.tenant, args)
                            .expect("serving launch must not be rejected")
                    } else {
                        shard
                            .launch(issue, args)
                            .expect("serving launch must not be rejected")
                    };
                    (
                        inst,
                        ctx.clock.ns_from_cycles(arrival.saturating_sub(issue)),
                    )
                }
            };
            let device = sim.device_mut();
            let t0 = device.now();
            let done = device.run_until_finished(inst);
            let service_ns = ctx.clock.ns_from_cycles(done - t0);
            launches += 1;
            ctx.workload
                .verify(&req, dev, device)
                .expect("request must verify functionally");

            let start = now + switch_skew_ns + pre;
            let kernel_done = start + service_ns;
            let observed = kernel_done + post;
            let slot_free_at = if direct { observed } else { kernel_done };
            events.schedule(slot_free_at, Ev::SlotFree);
            records.push((
                i,
                ReqRecord {
                    tenant: req.tenant,
                    seq: req.seq,
                    device: dev,
                    arrival_ns: req.arrival_ns,
                    admitted_ns: now,
                    start_ns: start,
                    service_ns,
                    observed_ns: observed,
                },
            ));
        }
    }
    ShardOutcome {
        records,
        max_outstanding,
        launches,
    }
}

/// Launches on a standalone device: through the M²func wire protocol for
/// the M²func mechanism ([`CxlM2ndpDevice::m2func_launch`] — the same
/// implementation the fleet path uses), or directly at the controller for
/// the CXL.io mechanisms (their command path is modelled by the pre/post
/// phases, not by M²func packets).
fn m2func_or_direct_launch(
    device: &mut CxlM2ndpDevice,
    mechanism: OffloadMechanism,
    asid: u16,
    args: LaunchArgs,
) -> KernelInstanceId {
    if mechanism == OffloadMechanism::M2Func {
        device
            .m2func_launch(asid, args)
            .expect("serving launch must not be rejected")
    } else {
        device
            .launch(args)
            .expect("serving launch must not be rejected")
    }
}

// ---------------------------------------------------------------------------
// The KVStore serving workloads (Figs. 1b/10b/11a/11c, fig15)
// ---------------------------------------------------------------------------

/// A KVStore GET workload sharded across the backend's devices: the global
/// key space is striped at item granularity (`key % devices` owns the key),
/// each device holds its shard as a real hash table in its own memory, and
/// every request is one fine-grained GET kernel.
#[derive(Debug)]
pub struct KvServeWorkload {
    shards: Vec<kvstore::KvData>,
    kernels: Vec<KernelId>,
    shard_bases: Vec<u64>,
    total_items: u64,
    zipf: Zipf,
}

/// Scale of one serving shard (items per device; buckets = items / 2).
pub const KV_ITEMS_PER_DEVICE: u64 = 16 << 10;

impl KvServeWorkload {
    /// Builds the sharded store inside `backend`'s devices (one
    /// [`kvstore::generate`] per device, `items_per_device` each) and
    /// registers the GET kernel everywhere. `zipf_theta` skews the key
    /// popularity (YCSB default 0.99).
    pub fn build(backend: &mut ServeBackend, items_per_device: u64, zipf_theta: f64) -> Self {
        let ndev = backend.devices();
        let mut shards = Vec::with_capacity(ndev);
        let mut kernels = Vec::with_capacity(ndev);
        let mut shard_bases = Vec::with_capacity(ndev);
        for dev in 0..ndev {
            let cfg = kvstore::KvConfig {
                items: items_per_device,
                buckets: (items_per_device / 2).max(1),
                get_ratio: 1.0,
                requests: 0,
                zipf_theta: 0.99,
                seed: 0xCB5A ^ dev as u64,
            };
            let (data, kid, base) = match backend {
                ServeBackend::Device(device) => {
                    let data = kvstore::generate(cfg, device.memory_mut());
                    let kid = device.register_kernel(kvstore::kernel());
                    (data, kid, 0)
                }
                ServeBackend::Fleet(fleet) => {
                    let data = kvstore::generate(cfg, fleet.device_mut(dev).memory_mut());
                    let kid = fleet.device_mut(dev).register_kernel(kvstore::kernel());
                    let base = fleet.shard_base(dev);
                    (data, kid, base)
                }
            };
            shards.push(data);
            kernels.push(kid);
            shard_bases.push(base);
        }
        let total_items = items_per_device * ndev as u64;
        Self {
            shards,
            kernels,
            shard_bases,
            total_items,
            zipf: Zipf::new(total_items, zipf_theta),
        }
    }

    /// Total items across all shards.
    pub fn total_items(&self) -> u64 {
        self.total_items
    }

    fn owner(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    fn local_request(&self, key: u64) -> kvstore::KvRequest {
        kvstore::KvRequest {
            item: key / self.shards.len() as u64,
            get: true,
        }
    }

    fn slot(req: &Request) -> u32 {
        (req.seq % 64) as u32
    }
}

impl ServeWorkload for KvServeWorkload {
    fn sample_key(&mut self, _tenant: u16, rng: &mut m2ndp_sim::rng::StdRng) -> u64 {
        self.zipf.sample(rng)
    }

    fn route_addr(&self, key: u64, _devices: usize) -> u64 {
        self.shard_bases[self.owner(key)]
    }

    fn launch_args(&self, req: &Request, dev: usize) -> LaunchArgs {
        debug_assert_eq!(self.owner(req.key), dev);
        kvstore::launch(
            &self.shards[dev],
            self.kernels[dev],
            self.local_request(req.key),
            Self::slot(req),
            0,
        )
    }

    fn verify(&self, req: &Request, dev: usize, device: &CxlM2ndpDevice) -> Result<(), String> {
        kvstore::verify_get(
            &self.shards[dev],
            device.memory(),
            self.local_request(req.key),
            Self::slot(req),
        )
    }
}

/// A KVStore GET workload *replicated* on every device: each device holds
/// the identical full store (same [`kvstore::generate`] seed), so any
/// device can serve any key — the placement freedom that load-aware
/// scheduling, work stealing, and autoscaling require
/// ([`ServeWorkload::replicated`]).
///
/// Keys still have a *home* device (`key % devices`, exposed through
/// [`ServeWorkload::route_addr`] as the device's HDM base) so
/// locality-seeking schedulers have something to aim at; off-home
/// placement changes which replica answers, not the answer.
#[derive(Debug)]
pub struct ReplicatedKvServeWorkload {
    replicas: Vec<kvstore::KvData>,
    kernels: Vec<KernelId>,
    shard_bases: Vec<u64>,
    items: u64,
    zipf: Zipf,
}

impl ReplicatedKvServeWorkload {
    /// Builds the same `items`-entry store inside *every* device of
    /// `backend` and registers the GET kernel everywhere. `zipf_theta`
    /// skews the key popularity (YCSB default 0.99).
    pub fn build(backend: &mut ServeBackend, items: u64, zipf_theta: f64) -> Self {
        let ndev = backend.devices();
        let mut replicas = Vec::with_capacity(ndev);
        let mut kernels = Vec::with_capacity(ndev);
        let mut shard_bases = Vec::with_capacity(ndev);
        for dev in 0..ndev {
            // Identical config — crucially the same seed — on every
            // device, so all replicas hold the same key/value pairs.
            let cfg = kvstore::KvConfig {
                items,
                buckets: (items / 2).max(1),
                get_ratio: 1.0,
                requests: 0,
                zipf_theta: 0.99,
                seed: 0xCB5A,
            };
            let (data, kid, base) = match backend {
                ServeBackend::Device(device) => {
                    let data = kvstore::generate(cfg, device.memory_mut());
                    let kid = device.register_kernel(kvstore::kernel());
                    (data, kid, 0)
                }
                ServeBackend::Fleet(fleet) => {
                    let data = kvstore::generate(cfg, fleet.device_mut(dev).memory_mut());
                    let kid = fleet.device_mut(dev).register_kernel(kvstore::kernel());
                    let base = fleet.shard_base(dev);
                    (data, kid, base)
                }
            };
            replicas.push(data);
            kernels.push(kid);
            shard_bases.push(base);
        }
        Self {
            replicas,
            kernels,
            shard_bases,
            items,
            zipf: Zipf::new(items, zipf_theta),
        }
    }

    /// Items in the (replicated) store.
    pub fn items(&self) -> u64 {
        self.items
    }

    fn local_request(key: u64) -> kvstore::KvRequest {
        kvstore::KvRequest {
            item: key,
            get: true,
        }
    }

    fn slot(req: &Request) -> u32 {
        (req.seq % 64) as u32
    }
}

impl ServeWorkload for ReplicatedKvServeWorkload {
    fn sample_key(&mut self, _tenant: u16, rng: &mut m2ndp_sim::rng::StdRng) -> u64 {
        self.zipf.sample(rng)
    }

    fn route_addr(&self, key: u64, _devices: usize) -> u64 {
        self.shard_bases[(key % self.replicas.len() as u64) as usize]
    }

    fn launch_args(&self, req: &Request, dev: usize) -> LaunchArgs {
        kvstore::launch(
            &self.replicas[dev],
            self.kernels[dev],
            Self::local_request(req.key),
            Self::slot(req),
            0,
        )
    }

    fn verify(&self, req: &Request, dev: usize, device: &CxlM2ndpDevice) -> Result<(), String> {
        kvstore::verify_get(
            &self.replicas[dev],
            device.memory(),
            Self::local_request(req.key),
            Self::slot(req),
        )
    }

    fn replicated(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2ndp_core::fleet::FleetConfig;
    use m2ndp_core::M2ndpConfig;
    use m2ndp_cxl::SwitchConfig;
    use m2ndp_sim::trace::ScaleDir;

    fn small_cfg() -> M2ndpConfig {
        let mut cfg = M2ndpConfig::default_device();
        cfg.engine.units = 2;
        cfg
    }

    fn fleet_backend(devices: usize) -> ServeBackend {
        ServeBackend::Fleet(Box::new(Fleet::new(FleetConfig {
            devices,
            device: small_cfg(),
            switch: SwitchConfig::default(),
            hdm_bytes_per_device: 64 << 20,
        })))
    }

    fn tenants(requests: usize, rate: f64) -> Vec<TenantSpec> {
        vec![
            TenantSpec::poisson("poisson", rate * 0.7)
                .requests(requests)
                .slo_ns(10_000.0)
                .seed(11),
            TenantSpec::trace(
                "trace",
                vec![
                    1e9 / (rate * 0.3),
                    0.5e9 / (rate * 0.3),
                    1.5e9 / (rate * 0.3),
                ],
            )
            .requests(requests / 2)
            .slo_ns(10_000.0)
            .seed(13),
        ]
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let mut backend = fleet_backend(2);
        let mut wl = KvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func);
        let report = run(&mut backend, &mut wl, &cfg, &tenants(120, 2e5));
        assert_eq!(report.launches, 120 + 60);
        assert_eq!(report.records.len(), 180);
        assert_eq!(report.tenants[0].completed, 120);
        assert_eq!(report.tenants[1].completed, 60);
        assert!(report.throughput > 0.0);
        // A static fleet's device-time is devices × makespan.
        let makespan = report
            .records
            .iter()
            .map(|r| r.observed_ns)
            .fold(0.0f64, f64::max);
        assert_eq!(report.device_time_ns, 2.0 * makespan);
        assert!(report.scale_events.is_empty());
        // Every launch store crossed the switch.
        assert_eq!(
            report.launches,
            backend.fleet().unwrap().switch().host_transfers.get()
        );
    }

    #[test]
    fn latencies_are_at_least_the_mechanism_overhead() {
        let mut backend = fleet_backend(2);
        let mut wl = KvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::CxlIoRingBuffer);
        let report = run(&mut backend, &mut wl, &cfg, &tenants(80, 2e5));
        let floor = cfg.model.overhead_ns();
        for r in &report.records {
            assert!(
                r.latency_ns() >= floor,
                "latency {} below overhead {floor}",
                r.latency_ns()
            );
        }
    }

    #[test]
    fn direct_mmio_keeps_one_outstanding_kernel() {
        let mut backend = fleet_backend(2);
        let mut wl = KvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::CxlIoDirect);
        // Saturating load: queues build, but the register constraint holds.
        let report = run(&mut backend, &mut wl, &cfg, &tenants(150, 5e6));
        for (d, &m) in report.max_outstanding.iter().enumerate() {
            assert!(m <= 1, "device {d} had {m} outstanding under direct MMIO");
        }
    }

    #[test]
    fn fifo_admission_preserves_per_tenant_order_per_device() {
        let mut backend = fleet_backend(4);
        let mut wl = KvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func);
        let report = run(&mut backend, &mut wl, &cfg, &tenants(200, 3e6));
        let mut last: std::collections::HashMap<(u16, usize), (u64, f64)> =
            std::collections::HashMap::new();
        // records are in global arrival order; admissions per (tenant,
        // device) must be monotone in both seq and time.
        for r in &report.records {
            if let Some(&(seq, adm)) = last.get(&(r.tenant, r.device)) {
                assert!(r.seq > seq, "tenant {} reordered on {}", r.tenant, r.device);
                assert!(r.admitted_ns >= adm, "admission time went backwards");
            }
            last.insert((r.tenant, r.device), (r.seq, r.admitted_ns));
        }
    }

    #[test]
    fn m2func_beats_ring_buffer_p95_at_light_load() {
        let p95 = |mech: OffloadMechanism| {
            let mut backend = fleet_backend(1);
            let mut wl = KvServeWorkload::build(&mut backend, 1 << 10, 0.9);
            let cfg = ServeConfig::with_defaults(mech);
            let mut report = run(&mut backend, &mut wl, &cfg, &tenants(150, 1e5));
            report.p95_ns()
        };
        let m2 = p95(OffloadMechanism::M2Func);
        let rb = p95(OffloadMechanism::CxlIoRingBuffer);
        assert!(rb > 2.0 * m2, "RB P95 {rb} should dwarf M2func P95 {m2}");
    }

    #[test]
    fn burst_arrivals_are_monotone_and_converge_to_mean_rate() {
        let spec = TenantSpec::burst("bursty", 1e6, 8.0, 100_000.0)
            .requests(4000)
            .seed(42);
        let times = arrival_times(&spec);
        assert_eq!(times.len(), 4000);
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "burst arrivals must be monotone");
        }
        let span_s = times.last().unwrap() * 1e-9;
        let rate = times.len() as f64 / span_s;
        let err = (rate - 1e6).abs() / 1e6;
        assert!(err < 0.10, "empirical rate {rate:.0} vs configured 1e6");
        // And the bursts are real: most gaps are much shorter than the
        // mean (arrivals compressed 8×), a few span the silent window.
        let mean_gap = times.last().unwrap() / times.len() as f64;
        let short = times.windows(2).filter(|w| w[1] - w[0] < mean_gap).count();
        assert!(short * 4 > times.len() * 3, "arrivals should be clustered");
    }

    #[test]
    fn shortest_queue_balances_a_replicated_store() {
        let mut backend = fleet_backend(2);
        let mut wl = ReplicatedKvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func)
            .scheduler(SchedulerKind::ShortestQueue);
        let report = run(&mut backend, &mut wl, &cfg, &tenants(120, 2e6));
        assert_eq!(report.records.len(), 180);
        // Both devices served work (Zipf-skewed home routing would not
        // guarantee that at these sizes; least-loaded routing does).
        let mut by_dev = [0u64; 2];
        for r in &report.records {
            by_dev[r.device] += 1;
        }
        assert!(by_dev.iter().all(|&c| c > 0), "one device idle: {by_dev:?}");
    }

    #[test]
    #[should_panic(expected = "replicated")]
    fn dynamic_scheduling_rejects_sharded_workloads() {
        let mut backend = fleet_backend(2);
        let mut wl = KvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func)
            .scheduler(SchedulerKind::ShortestQueue);
        let _ = run(&mut backend, &mut wl, &cfg, &tenants(20, 2e5));
    }

    #[test]
    fn autoscaler_grows_the_fleet_under_load_and_records_events() {
        let mut backend = fleet_backend(4);
        let mut wl = ReplicatedKvServeWorkload::build(&mut backend, 1 << 10, 0.9);
        // One kernel slot per device + saturating load + a tight target:
        // the fleet must grow off its 1-device floor.
        let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func)
            .device_slots(1)
            .scheduler(SchedulerKind::ShortestQueue)
            .autoscale(
                AutoscaleConfig::new(1, 4, 4_000.0)
                    .interval_ns(20_000.0)
                    .window(64),
            );
        let report = run(&mut backend, &mut wl, &cfg, &tenants(300, 5e6));
        assert_eq!(report.records.len(), 450);
        assert!(
            report
                .scale_events
                .iter()
                .any(|e| matches!(e.dir, ScaleDir::Up)),
            "expected at least one scale-up, got {:?}",
            report.scale_events
        );
        // Device-time stays below the full-fleet envelope: some devices
        // were parked part of the run.
        let makespan = report
            .records
            .iter()
            .map(|r| r.observed_ns)
            .fold(0.0f64, f64::max);
        assert!(report.device_time_ns < 4.0 * makespan);
        // Active-interval bookkeeping matches the event log: every Up has
        // a later active count, every DrainDone a parked device.
        for e in &report.scale_events {
            assert!(e.device < 4);
            assert!(e.t_ns > 0.0);
        }
    }

    #[test]
    fn priority_slo_prefers_high_priority_tenant_under_saturation() {
        let run_p95 = |kind: SchedulerKind| {
            let mut backend = fleet_backend(2);
            let mut wl = ReplicatedKvServeWorkload::build(&mut backend, 1 << 10, 0.9);
            let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func).scheduler(kind);
            let specs = vec![
                TenantSpec::poisson("latency", 2e6)
                    .requests(150)
                    .slo_ns(3_000.0)
                    .seed(11)
                    .priority(0),
                TenantSpec::poisson("batch", 4e6)
                    .requests(300)
                    .slo_ns(50_000.0)
                    .seed(13)
                    .priority(3),
            ];
            let mut report = run(&mut backend, &mut wl, &cfg, &specs);
            report.tenants[0].latencies.percentile(0.95)
        };
        let prio = run_p95(SchedulerKind::PrioritySlo);
        let fair = run_p95(SchedulerKind::ShortestQueue);
        assert!(
            prio <= fair,
            "priority scheduling should not hurt the high-priority tenant: {prio} vs {fair}"
        );
    }
}
