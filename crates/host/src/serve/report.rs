//! Serving-run outcomes: per-request timing records, per-tenant and
//! run-level reports, and the shared post-processing that turns raw
//! records into a [`ServeReport`].
//!
//! Both execution paths — the shard-parallel static loop and the global
//! dynamic-scheduler loop — end here: [`finish_run`] computes the steady
//! measurement window, tenant histograms, SLO counters, and the opt-in
//! trace assembly from the same record stream, so the two paths cannot
//! drift in how they measure.

use m2ndp_core::{MetricSet, StatValue};
use m2ndp_sim::json::Json;
use m2ndp_sim::trace::{EventKind, Lane, ReqPhase, TraceEvent};
use m2ndp_sim::FHistogram;

use super::autoscale::ScaleEvent;
use super::{ServeBackend, ServeConfig, TenantSpec};

/// Full timing record of one served request.
#[derive(Debug, Clone, Copy)]
pub struct ReqRecord {
    /// Issuing tenant.
    pub tenant: u16,
    /// Per-tenant sequence number.
    pub seq: u64,
    /// Device that served the request.
    pub device: usize,
    /// Arrival (ns).
    pub arrival_ns: f64,
    /// Admission into a kernel slot (ns, `>= arrival_ns`).
    pub admitted_ns: f64,
    /// Kernel start after the pre-launch phase (+ switch skew in fleets).
    pub start_ns: f64,
    /// Simulated kernel service time (ns, from the device simulator).
    pub service_ns: f64,
    /// Host-observed completion (ns).
    pub observed_ns: f64,
}

impl ReqRecord {
    /// End-to-end latency (ns).
    pub fn latency_ns(&self) -> f64 {
        self.observed_ns - self.arrival_ns
    }

    /// The request's latency decomposed into the four
    /// [`ReqPhase`] durations, in [`ReqPhase::ALL`] order: queue
    /// (arrival → admission), launch (admission → kernel start, including
    /// switch skew and the mechanism's pre phase), execute (simulated
    /// kernel service), link (kernel completion → host observation, the
    /// mechanism's return path). The link phase is computed as the residual
    /// so the four durations sum to [`Self::latency_ns`] up to one float
    /// rounding step.
    pub fn phase_ns(&self) -> [f64; 4] {
        let queue = self.admitted_ns - self.arrival_ns;
        let launch = self.start_ns - self.admitted_ns;
        let execute = self.service_ns;
        let link = self.latency_ns() - (queue + launch + execute);
        [queue, launch, execute, link]
    }
}

/// Per-tenant outcome over the measured window.
#[derive(Debug)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Requests completed (all, including warm-up/drain).
    pub completed: u64,
    /// Requests inside the measured window.
    pub measured: u64,
    /// Measured-window end-to-end latencies (ns).
    pub latencies: FHistogram,
    /// Measured completions above the tenant's SLO.
    pub slo_violations: u64,
}

impl TenantReport {
    /// The tenant's outcome in the workspace-wide metrics shape (same
    /// [`MetricSet`] as `DeviceStats::metrics`).
    pub fn metrics(&mut self) -> MetricSet {
        MetricSet::from(vec![
            ("completed".to_string(), StatValue::U64(self.completed)),
            ("measured".to_string(), StatValue::U64(self.measured)),
            (
                "p50_ns".to_string(),
                StatValue::F64(self.latencies.percentile(0.50)),
            ),
            (
                "p95_ns".to_string(),
                StatValue::F64(self.latencies.percentile(0.95)),
            ),
            (
                "slo_violations".to_string(),
                StatValue::U64(self.slo_violations),
            ),
        ])
    }
}

/// Outcome of one serving run.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-tenant reports, in tenant order.
    pub tenants: Vec<TenantReport>,
    /// Measured-window latencies across all tenants.
    pub combined: FHistogram,
    /// Steady-state throughput (requests/s) over the measured window: the
    /// window opens when warm-up is over (the first measured arrival, or
    /// the last warm-up completion if the ramp is still draining) and
    /// closes at the last measured completion; drain-tail requests are
    /// excluded from the count entirely.
    pub throughput: f64,
    /// Offered load (requests/s): total requests over the arrival span.
    pub offered_per_sec: f64,
    /// The `[open, close]` measurement window (ns).
    pub steady_window: (f64, f64),
    /// Peak concurrently outstanding kernels per device (direct MMIO must
    /// never exceed 1).
    pub max_outstanding: Vec<u32>,
    /// Total kernel launches performed on the simulators.
    pub launches: u64,
    /// Every request's timing record, in global arrival order.
    pub records: Vec<ReqRecord>,
    /// Aggregate device-busy time (ns): the integral of active-device
    /// count over the run. For a static fleet this is `devices × makespan`;
    /// under autoscaling each device contributes only the intervals it was
    /// active or draining — the denominator of the fig15 device-hours
    /// saving.
    pub device_time_ns: f64,
    /// The autoscaler's lifecycle transitions, in event order (empty when
    /// autoscaling was off).
    pub scale_events: Vec<ScaleEvent>,
    /// Structured trace of the run when [`ServeConfig::trace`] was on
    /// (empty otherwise): device-internal events in device index order,
    /// followed by per-request phase spans in global arrival order, then
    /// scale events in event order.
    pub trace: Vec<TraceEvent>,
    /// Canonical disassembly of the registered kernels
    /// (`(id, name, text)`), exported with traces for instruction-level
    /// annotation of kernel spans. Empty when tracing was off.
    pub trace_kernels: Vec<(u32, String, String)>,
}

impl ServeReport {
    /// Measured-window P95 across all tenants (ns).
    pub fn p95_ns(&mut self) -> f64 {
        self.combined.percentile(0.95)
    }

    /// The run's headline numbers in the workspace-wide metrics shape
    /// (same [`MetricSet`] as `DeviceStats::metrics`): the figure emitters
    /// and the `m2ndp-trace` CLI both read this instead of picking struct
    /// fields ad hoc.
    pub fn metrics(&mut self) -> MetricSet {
        let slo: u64 = self.tenants.iter().map(|t| t.slo_violations).sum();
        let max_out = self.max_outstanding.iter().copied().max().unwrap_or(0);
        MetricSet::from(vec![
            (
                "throughput_rps".to_string(),
                StatValue::F64(self.throughput),
            ),
            (
                "offered_rps".to_string(),
                StatValue::F64(self.offered_per_sec),
            ),
            (
                "p50_ns".to_string(),
                StatValue::F64(self.combined.percentile(0.50)),
            ),
            ("p95_ns".to_string(), StatValue::F64(self.p95_ns())),
            ("slo_violations".to_string(), StatValue::U64(slo)),
            (
                "max_outstanding".to_string(),
                StatValue::U64(u64::from(max_out)),
            ),
            ("launches".to_string(), StatValue::U64(self.launches)),
        ])
    }

    /// Chrome trace-event export of a traced run (loads in Perfetto and
    /// `chrome://tracing`). The kernel disassembly rides along under
    /// `otherData.kernels` so viewers and the `m2ndp-trace` CLI can
    /// annotate kernel spans at instruction level. Deterministic: the same
    /// run produces byte-identical JSON at any shard parallelism.
    pub fn chrome_trace(&self) -> Json {
        let kernels = Json::Arr(
            self.trace_kernels
                .iter()
                .map(|(id, name, disasm)| {
                    Json::Obj(vec![
                        ("id".to_string(), Json::U64(u64::from(*id))),
                        ("name".to_string(), Json::Str(name.clone())),
                        ("disassembly".to_string(), Json::Str(disasm.clone())),
                    ])
                })
                .collect(),
        );
        m2ndp_sim::trace::chrome_trace_json(&self.trace, vec![("kernels".to_string(), kernels)])
    }
}

/// Execution-path-specific outputs that [`finish_run`] folds into the
/// report alongside the record stream.
pub(super) struct RunAux {
    /// Peak concurrently outstanding kernels per device.
    pub max_outstanding: Vec<u32>,
    /// Total kernel launches.
    pub launches: u64,
    /// Device-busy integral computed by the dynamic loop; `None` means a
    /// static fleet (`devices × makespan`).
    pub device_time_ns: Option<f64>,
    /// Autoscaler lifecycle transitions (empty without autoscaling).
    pub scale_events: Vec<ScaleEvent>,
    /// Whether to emit per-request `Route` instants into the trace (the
    /// dynamic loop's placement decisions; static routing is a pure
    /// function of the key, so it emits none).
    pub route_events: bool,
}

/// Shared post-processing: trace assembly, steady-window measurement,
/// per-tenant accumulation. `records` must be in global arrival order.
pub(super) fn finish_run(
    backend: &mut ServeBackend,
    cfg: &ServeConfig,
    tenants: &[TenantSpec],
    records: Vec<ReqRecord>,
    aux: RunAux,
) -> ServeReport {
    let n = records.len();

    // ---- trace collection (opt-in; `cfg.trace == false` touches nothing
    // in the simulation, so untraced runs stay byte-identical) ----
    let (trace, trace_kernels) = if cfg.trace {
        let mut events = backend.collect_traces();
        for r in &records {
            if aux.route_events {
                events.push(TraceEvent {
                    ts_ns: r.arrival_ns,
                    device: r.device as u32,
                    lane: Lane::Tenant(r.tenant),
                    kind: EventKind::Route {
                        tenant: r.tenant,
                        seq: r.seq,
                        dst: r.device as u16,
                    },
                });
            }
            let phases = r.phase_ns();
            let starts = [
                r.arrival_ns,
                r.admitted_ns,
                r.start_ns,
                r.start_ns + r.service_ns,
            ];
            for (i, phase) in ReqPhase::ALL.into_iter().enumerate() {
                events.push(TraceEvent {
                    ts_ns: starts[i],
                    device: r.device as u32,
                    lane: Lane::Tenant(r.tenant),
                    kind: EventKind::ReqPhase {
                        tenant: r.tenant,
                        seq: r.seq,
                        phase,
                        dur_ns: phases[i],
                    },
                });
            }
        }
        for e in &aux.scale_events {
            events.push(TraceEvent {
                ts_ns: e.t_ns,
                device: e.device as u32,
                lane: Lane::Controller,
                kind: EventKind::Scale {
                    device: e.device as u16,
                    dir: e.dir,
                    active: e.active as u32,
                },
            });
        }
        (events, backend.device(0).kernel_disassembly())
    } else {
        (Vec::new(), Vec::new())
    };

    // ---- measurement windows (same definition as OffloadSim's, via the
    // shared helper, plus the drain-tail exclusion) ----
    let arrivals_ns: Vec<f64> = records.iter().map(|r| r.arrival_ns).collect();
    let completions_ns: Vec<f64> = records.iter().map(|r| r.observed_ns).collect();
    let window = crate::offload::steady_window(
        &arrivals_ns,
        &completions_ns,
        cfg.warmup_frac,
        cfg.drain_frac,
    );
    let measured = &records[window.measured.0..window.measured.1];
    let span = records
        .iter()
        .map(|r| r.arrival_ns)
        .fold(f64::NEG_INFINITY, f64::max);
    let offered_per_sec = if span > 0.0 {
        n as f64 / (span * 1e-9)
    } else {
        0.0
    };
    let makespan = completions_ns.iter().copied().fold(0.0f64, f64::max);
    let device_time_ns = aux
        .device_time_ns
        .unwrap_or(backend.devices() as f64 * makespan);

    let mut tenant_reports: Vec<TenantReport> = tenants
        .iter()
        .map(|t| TenantReport {
            name: t.name.clone(),
            completed: 0,
            measured: 0,
            latencies: FHistogram::new(),
            slo_violations: 0,
        })
        .collect();
    let mut combined = FHistogram::new();
    for r in &records {
        tenant_reports[r.tenant as usize].completed += 1;
    }
    for r in measured {
        let report = &mut tenant_reports[r.tenant as usize];
        report.measured += 1;
        report.latencies.record(r.latency_ns());
        if r.latency_ns() > tenants[r.tenant as usize].slo_ns {
            report.slo_violations += 1;
        }
        combined.record(r.latency_ns());
    }

    ServeReport {
        tenants: tenant_reports,
        combined,
        throughput: window.throughput,
        offered_per_sec,
        steady_window: (window.open, window.close),
        max_outstanding: aux.max_outstanding,
        launches: aux.launches,
        records,
        device_time_ns,
        scale_events: aux.scale_events,
        trace,
        trace_kernels,
    }
}
