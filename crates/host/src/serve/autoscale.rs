//! Dynamic fleet autoscaling against a tail-latency SLO.
//!
//! The `Autoscaler` watches a sliding window of completed-request
//! latencies and periodically compares the window P95 against a target:
//! above target it activates a parked device, comfortably below target it
//! drains the highest-indexed active device (stop admitting, let in-flight
//! work finish, then park). Decisions are driven entirely by simulated
//! time and simulated latencies, so autoscaled runs are exactly as
//! deterministic as static ones.
//!
//! Lifecycle (one device):
//!
//! ```text
//!          scale-up                    drain decision
//! Parked ────────────▶ Active ────────────▶ Draining ───▶ Drained/Parked
//!   ▲                  admits new work      finishes        idle, zero
//!   └──────────────────────────────────────  in-flight ──── outstanding
//!                     (may be re-activated by a later scale-up)
//! ```
//!
//! Device-time accounting integrates only Active/Draining intervals, so an
//! autoscaled run's `device_time_ns` is directly comparable against a
//! static fleet's `devices × makespan`.

use m2ndp_sim::trace::ScaleDir;

/// One autoscaler lifecycle transition, as recorded in
/// [`ServeReport::scale_events`](super::ServeReport::scale_events) and
/// (on traced runs) emitted as a `"sched"` trace instant.
#[derive(Debug, Clone, Copy)]
pub struct ScaleEvent {
    /// Simulated time of the transition (ns).
    pub t_ns: f64,
    /// Device the transition applies to.
    pub device: usize,
    /// What happened: scale-up, drain start, or drain completion.
    pub dir: ScaleDir,
    /// Active (admitting) device count after the transition.
    pub active: usize,
}

/// Autoscaling policy parameters.
///
/// Invariants (checked at run start): `1 <= min_devices <= max_devices`,
/// `max_devices <=` the backing fleet's device count, `p95_target_ns > 0`,
/// `interval_ns > 0`, `window >= 1`, and `0 < scale_down_frac < 1`.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Never drain below this many active devices.
    pub min_devices: usize,
    /// Never activate more than this many devices.
    pub max_devices: usize,
    /// The P95 latency target (ns) the autoscaler steers toward.
    pub p95_target_ns: f64,
    /// Interval between autoscaler evaluations (simulated ns).
    pub interval_ns: f64,
    /// Number of most-recent completion latencies the P95 is computed over.
    pub window: usize,
    /// Drain a device only when the window P95 is below
    /// `scale_down_frac * p95_target_ns` — the hysteresis band that keeps
    /// up/down decisions from oscillating.
    pub scale_down_frac: f64,
    /// Evaluations to skip after any scale action, letting its effect show
    /// up in the window before reacting again.
    pub cooldown_ticks: u32,
}

impl AutoscaleConfig {
    /// Policy with defaults: evaluate every 50 µs over the last 256
    /// completions, drain below half the target, 2-tick cooldown.
    pub fn new(min_devices: usize, max_devices: usize, p95_target_ns: f64) -> Self {
        Self {
            min_devices,
            max_devices,
            p95_target_ns,
            interval_ns: 50_000.0,
            window: 256,
            scale_down_frac: 0.5,
            cooldown_ticks: 2,
        }
    }

    /// Set the evaluation interval (simulated ns).
    pub fn interval_ns(mut self, ns: f64) -> Self {
        self.interval_ns = ns;
        self
    }

    /// Set the latency-window length (completions).
    pub fn window(mut self, n: usize) -> Self {
        self.window = n;
        self
    }

    /// Set the scale-down hysteresis fraction.
    pub fn scale_down_frac(mut self, frac: f64) -> Self {
        self.scale_down_frac = frac;
        self
    }

    /// Set the post-action cooldown (evaluations).
    pub fn cooldown_ticks(mut self, ticks: u32) -> Self {
        self.cooldown_ticks = ticks;
        self
    }

    pub(super) fn validate(&self, fleet_devices: usize) {
        assert!(
            self.min_devices >= 1 && self.min_devices <= self.max_devices,
            "autoscale: need 1 <= min_devices ({}) <= max_devices ({})",
            self.min_devices,
            self.max_devices
        );
        assert!(
            self.max_devices <= fleet_devices,
            "autoscale: max_devices ({}) exceeds fleet size ({fleet_devices})",
            self.max_devices
        );
        assert!(
            self.p95_target_ns > 0.0 && self.p95_target_ns.is_finite(),
            "autoscale: p95_target_ns must be positive and finite"
        );
        assert!(
            self.interval_ns > 0.0 && self.interval_ns.is_finite(),
            "autoscale: interval_ns must be positive and finite"
        );
        assert!(self.window >= 1, "autoscale: window must be >= 1");
        assert!(
            self.scale_down_frac > 0.0 && self.scale_down_frac < 1.0,
            "autoscale: scale_down_frac must be in (0, 1)"
        );
    }
}

/// A scaling decision for the event loop to enact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ScaleDecision {
    /// Activate one more device.
    Up,
    /// Start draining one device.
    Drain,
}

/// The runtime half of autoscaling: latency window + decision logic.
/// The serve event loop owns enactment (which device, queue rebalancing,
/// lifecycle bookkeeping); this type only answers "should the fleet grow
/// or shrink right now?".
#[derive(Debug)]
pub(super) struct Autoscaler {
    cfg: AutoscaleConfig,
    /// Ring buffer of the most recent completion latencies (ns).
    window: Vec<f64>,
    /// Next write position in `window` once it is full.
    cursor: usize,
    cooldown: u32,
}

impl Autoscaler {
    pub(super) fn new(cfg: AutoscaleConfig) -> Self {
        Self {
            cfg,
            window: Vec::with_capacity(cfg.window),
            cursor: 0,
            cooldown: 0,
        }
    }

    /// Record one completed request's end-to-end latency.
    pub(super) fn observe(&mut self, latency_ns: f64) {
        if self.window.len() < self.cfg.window {
            self.window.push(latency_ns);
        } else {
            self.window[self.cursor] = latency_ns;
            self.cursor = (self.cursor + 1) % self.cfg.window;
        }
    }

    /// Window P95 via nearest-rank on a sorted copy (the window is small).
    fn window_p95(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted = self.window.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() as f64) * 0.95).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Evaluate the policy at a tick. `active` counts Active devices
    /// (Draining ones no longer admit and are already on their way out).
    pub(super) fn decide(&mut self, active: usize) -> Option<ScaleDecision> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let p95 = self.window_p95()?;
        let decision = if p95 > self.cfg.p95_target_ns && active < self.cfg.max_devices {
            Some(ScaleDecision::Up)
        } else if p95 < self.cfg.scale_down_frac * self.cfg.p95_target_ns
            && active > self.cfg.min_devices
        {
            Some(ScaleDecision::Drain)
        } else {
            None
        };
        if decision.is_some() {
            // Let the action's effect reach the window before reacting
            // again: restart the observation window and hold off.
            self.window.clear();
            self.cursor = 0;
            self.cooldown = self.cfg.cooldown_ticks;
        }
        decision
    }

    pub(super) fn interval_ns(&self) -> f64 {
        self.cfg.interval_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(cfg: AutoscaleConfig, latency: f64, n: usize) -> Autoscaler {
        let mut a = Autoscaler::new(cfg);
        for _ in 0..n {
            a.observe(latency);
        }
        a
    }

    #[test]
    fn scales_up_when_p95_above_target() {
        let mut a = filled(AutoscaleConfig::new(1, 4, 1000.0), 2000.0, 64);
        assert_eq!(a.decide(2), Some(ScaleDecision::Up));
    }

    #[test]
    fn drains_when_p95_well_below_target() {
        let mut a = filled(AutoscaleConfig::new(1, 4, 1000.0), 100.0, 64);
        assert_eq!(a.decide(2), Some(ScaleDecision::Drain));
    }

    #[test]
    fn holds_inside_hysteresis_band() {
        let mut a = filled(AutoscaleConfig::new(1, 4, 1000.0), 700.0, 64);
        assert_eq!(a.decide(2), None);
    }

    #[test]
    fn respects_bounds_and_cooldown() {
        // At max_devices an over-target window must not scale up.
        let mut a = filled(AutoscaleConfig::new(1, 2, 1000.0), 2000.0, 64);
        assert_eq!(a.decide(2), None);
        // At min_devices an under-target window must not drain.
        let mut a = filled(AutoscaleConfig::new(2, 4, 1000.0), 100.0, 64);
        assert_eq!(a.decide(2), None);
        // After an action, cooldown ticks suppress decisions and the
        // window restarts empty.
        let mut a = filled(AutoscaleConfig::new(1, 4, 1000.0), 2000.0, 64);
        assert_eq!(a.decide(2), Some(ScaleDecision::Up));
        a.observe(2000.0);
        assert_eq!(a.decide(3), None);
        assert_eq!(a.decide(3), None);
        assert_eq!(a.decide(3), Some(ScaleDecision::Up));
    }

    #[test]
    fn empty_window_never_decides() {
        let mut a = Autoscaler::new(AutoscaleConfig::new(1, 4, 1000.0));
        assert_eq!(a.decide(1), None);
    }
}
