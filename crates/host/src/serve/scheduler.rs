//! Pluggable request scheduling for the serving runtime, plus the global
//! event loop that dynamic schedulers and autoscaled runs execute on.
//!
//! # Two execution paths
//!
//! The serving runtime has two ways to execute a run, chosen by
//! [`SchedulerKind::is_dynamic`] and [`ServeConfig::autoscale`]:
//!
//! * **Shard-parallel** (static placement): when the scheduler is a pure
//!   function of the request key ([`SchedulerKind::StaticFifo`],
//!   [`SchedulerKind::HdmLocality`]) and the fleet is not elastic, a
//!   request's device is decided before anything runs, so the runtime
//!   decomposes into independent per-device event loops
//!   (`Fleet::with_shards`). This is the historical fig11c path and stays
//!   bit-identical to it.
//! * **Global serial loop** (`run_dynamic`): load-aware schedulers
//!   ([`SchedulerKind::ShortestQueue`], [`SchedulerKind::PrioritySlo`])
//!   and any autoscaled run route each request when it *arrives*, against
//!   the fleet's live admission state. Placement then depends on the
//!   interleaving of all devices' completions, so the loop is global and
//!   serial — trivially deterministic at any `--jobs`/`--fleet-jobs`
//!   setting, because those knobs never touch it.
//!
//! # Determinism rules for scheduler implementations
//!
//! A [`Scheduler`] must be a deterministic function of its inputs: the
//! request views, the [`FleetView`] snapshots it is handed, and its own
//! state evolved through the callbacks. No randomness, no ambient state,
//! no reliance on map iteration order. All tie-breaks must be explicit
//! (the built-ins break ties by lowest device index / queue position).
//!
//! # Data-placement requirement
//!
//! Anything that can place a request off its home device — load-aware
//! routing, work stealing, draining a device that owns data — requires a
//! workload that can serve any key on any device
//! ([`ServeWorkload::replicated`]). `run_dynamic` enforces this up
//! front with a panic rather than letting functional verification fail
//! halfway through a run.

use std::collections::VecDeque;

use m2ndp_core::{DeviceLifecycle, DeviceView, FleetView};
use m2ndp_sim::{FEventQueue, Frequency};

use crate::offload::OffloadMechanism;

use super::autoscale::{Autoscaler, ScaleDecision, ScaleEvent};
use super::report::{finish_run, ReqRecord, RunAux, ServeReport};
use super::{
    m2func_or_direct_launch, Request, ServeBackend, ServeConfig, ServeWorkload, TenantSpec,
};
use m2ndp_sim::trace::ScaleDir;

/// The built-in scheduling policies, selectable via
/// [`ServeConfig::scheduler`](super::ServeConfig::scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Route to the key's home device, FIFO admission — the historical
    /// fig11c behaviour, executed on the shard-parallel path and pinned
    /// bit-identical by the benchmark snapshot.
    #[default]
    StaticFifo,
    /// Route each arrival to the active device with the least load
    /// (queue + outstanding; ties to the lowest index). Load-aware, so it
    /// runs on the global loop and requires a replicated workload.
    ShortestQueue,
    /// Route to the device owning the key's HDM page (via the fleet's
    /// `HdmRouter`). For key-sharded *and* for home-striped replicated
    /// workloads this is exactly the home device, so without autoscaling
    /// it coincides with [`SchedulerKind::StaticFifo`] — the parity test
    /// pins that — and runs on the shard-parallel path. Under autoscaling
    /// it keeps routing home while the autoscaler reshapes the fleet.
    HdmLocality,
    /// Priority-aware admission with SLO-deadline ordering and bounded
    /// work stealing: arrivals route to the least-loaded device, each
    /// device admits its queued request with the (numerically lowest
    /// [`TenantSpec::priority`], earliest `arrival + slo` deadline) first,
    /// and a device going idle steals one queued request from the longest
    /// active queue. Runs on the global loop.
    PrioritySlo,
}

impl SchedulerKind {
    /// All built-in policies, in declaration order.
    pub fn all() -> [SchedulerKind; 4] {
        [
            SchedulerKind::StaticFifo,
            SchedulerKind::ShortestQueue,
            SchedulerKind::HdmLocality,
            SchedulerKind::PrioritySlo,
        ]
    }

    /// Stable CLI/JSON name (`static-fifo`, `shortest-queue`,
    /// `hdm-locality`, `priority-slo`).
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::StaticFifo => "static-fifo",
            SchedulerKind::ShortestQueue => "shortest-queue",
            SchedulerKind::HdmLocality => "hdm-locality",
            SchedulerKind::PrioritySlo => "priority-slo",
        }
    }

    /// Parses a [`Self::name`] back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|k| k.name() == s)
    }

    /// Whether this policy routes against live fleet state (and therefore
    /// must run on the global serial loop). Placement-pure policies keep
    /// the shard-parallel path unless autoscaling makes the fleet itself
    /// dynamic.
    pub fn is_dynamic(self) -> bool {
        matches!(
            self,
            SchedulerKind::ShortestQueue | SchedulerKind::PrioritySlo
        )
    }

    /// Builds the policy's runtime state.
    pub(super) fn instantiate(self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::StaticFifo => Box::new(StaticFifo),
            SchedulerKind::ShortestQueue => Box::new(ShortestQueue),
            SchedulerKind::HdmLocality => Box::new(HdmLocality),
            SchedulerKind::PrioritySlo => Box::new(PrioritySlo),
        }
    }
}

/// The scheduler-facing view of one request: everything a routing or
/// admission decision may depend on. Built once per run from the
/// generated [`Request`]s and the tenant specs.
#[derive(Debug, Clone, Copy)]
pub struct ReqView {
    /// Issuing tenant.
    pub tenant: u16,
    /// Per-tenant sequence number.
    pub seq: u64,
    /// Arrival time (ns).
    pub arrival_ns: f64,
    /// Workload key.
    pub key: u64,
    /// The key's home device (where the `HdmRouter` would place it).
    pub home: usize,
    /// The tenant's latency SLO (ns); `arrival_ns + slo_ns` is the
    /// request's deadline.
    pub slo_ns: f64,
    /// The tenant's priority (0 = highest).
    pub priority: u8,
}

/// A pluggable routing/admission policy for the serving runtime.
///
/// Only [`Scheduler::route`] is required; the remaining hooks default to
/// FIFO admission, no stealing, and no state updates. Implementations
/// must follow the determinism rules in the [module docs](self).
pub trait Scheduler {
    /// Picks the device for a request at its arrival. Returning a device
    /// that is not currently [`DeviceLifecycle::Active`] (or is out of
    /// range) is tolerated: the runtime falls back to the least-loaded
    /// active device, so policies like home routing stay total under
    /// autoscaling.
    fn route(&mut self, req: &ReqView, view: &FleetView) -> usize;

    /// Picks which queued request device `dev` admits next, as a position
    /// into `queue` (whose entries index into `views`). Default: `0`, the
    /// FIFO front.
    fn select(
        &mut self,
        dev: usize,
        queue: &VecDeque<usize>,
        views: &[ReqView],
        now_ns: f64,
    ) -> usize {
        let _ = (dev, queue, views, now_ns);
        0
    }

    /// Called when device `idle` has a free slot and an empty queue:
    /// return a victim device to steal one queued request from (the
    /// runtime takes the newest). Default: no stealing.
    fn steal(&mut self, idle: usize, view: &FleetView) -> Option<usize> {
        let _ = (idle, view);
        None
    }

    /// Observes a completion: `req` finished on `dev` with the given
    /// end-to-end latency. Default: no-op.
    fn on_complete(&mut self, dev: usize, req: &ReqView, latency_ns: f64) {
        let _ = (dev, req, latency_ns);
    }

    /// Observes an autoscaler evaluation tick. Default: no-op.
    fn on_tick(&mut self, now_ns: f64, view: &FleetView) {
        let _ = (now_ns, view);
    }
}

/// [`SchedulerKind::StaticFifo`] — home routing, FIFO admission.
struct StaticFifo;

impl Scheduler for StaticFifo {
    fn route(&mut self, req: &ReqView, _view: &FleetView) -> usize {
        req.home
    }
}

/// [`SchedulerKind::HdmLocality`] — HDM-page-owner routing, FIFO
/// admission. Same placement function as [`StaticFifo`] (the home device
/// *is* the HDM owner); kept distinct so intent is explicit at call
/// sites and the coincidence is a tested property, not an accident.
struct HdmLocality;

impl Scheduler for HdmLocality {
    fn route(&mut self, req: &ReqView, _view: &FleetView) -> usize {
        req.home
    }
}

/// [`SchedulerKind::ShortestQueue`] — least-loaded routing.
struct ShortestQueue;

impl Scheduler for ShortestQueue {
    fn route(&mut self, _req: &ReqView, view: &FleetView) -> usize {
        view.shortest_active()
            .expect("fleet has at least one active device")
    }
}

/// [`SchedulerKind::PrioritySlo`] — least-loaded routing, priority +
/// SLO-deadline admission, bounded work stealing.
struct PrioritySlo;

impl Scheduler for PrioritySlo {
    fn route(&mut self, _req: &ReqView, view: &FleetView) -> usize {
        view.shortest_active()
            .expect("fleet has at least one active device")
    }

    fn select(
        &mut self,
        _dev: usize,
        queue: &VecDeque<usize>,
        views: &[ReqView],
        _now_ns: f64,
    ) -> usize {
        let mut best = 0usize;
        for pos in 1..queue.len() {
            let (b, c) = (&views[queue[best]], &views[queue[pos]]);
            let b_key = (b.priority, b.arrival_ns + b.slo_ns);
            let c_key = (c.priority, c.arrival_ns + c.slo_ns);
            if c_key.0 < b_key.0 || (c_key.0 == b_key.0 && c_key.1.total_cmp(&b_key.1).is_lt()) {
                best = pos;
            }
        }
        best
    }

    fn steal(&mut self, _idle: usize, view: &FleetView) -> Option<usize> {
        view.longest_active_queue()
    }
}

/// Events of the global serial loop. Arrivals are all pre-scheduled
/// before the loop starts, so equal-time ties break identically to the
/// per-shard loops (arrivals before completions, then insertion order).
enum Ev {
    /// Request `i` (global arrival index) arrives.
    Arrive(usize),
    /// A kernel slot frees on a device; carries the finished request and
    /// its end-to-end latency for the completion callbacks.
    SlotFree {
        dev: usize,
        idx: usize,
        latency_ns: f64,
    },
    /// Autoscaler evaluation tick.
    Tick,
}

/// All mutable state of the global loop, so the event handlers can be
/// methods instead of a closure tangle.
struct DynLoop<'a, W: ?Sized> {
    backend: &'a mut ServeBackend,
    workload: &'a W,
    requests: &'a [Request],
    views: Vec<ReqView>,
    clock: Frequency,
    mechanism: OffloadMechanism,
    pre: f64,
    post: f64,
    direct: bool,
    slots: u32,
    sched: Box<dyn Scheduler>,
    auto: Option<Autoscaler>,
    queues: Vec<VecDeque<usize>>,
    free: Vec<u32>,
    outstanding: Vec<u32>,
    max_outstanding: Vec<u32>,
    lifecycle: Vec<DeviceLifecycle>,
    active_count: usize,
    /// Start of each device's current active interval (`None` = parked).
    active_since: Vec<Option<f64>>,
    /// Closed active intervals, integrated (ns).
    device_time_ns: f64,
    launches: u64,
    completed: usize,
    records: Vec<(usize, ReqRecord)>,
    scale_events: Vec<ScaleEvent>,
}

impl<W: ServeWorkload + ?Sized> DynLoop<'_, W> {
    fn view(&self) -> FleetView {
        FleetView {
            devices: (0..self.queues.len())
                .map(|d| DeviceView {
                    queue_len: self.queues[d].len(),
                    outstanding: self.outstanding[d],
                    free_slots: self.free[d],
                    lifecycle: self.lifecycle[d],
                })
                .collect(),
        }
    }

    fn set_lifecycle(&mut self, dev: usize, state: DeviceLifecycle) {
        self.lifecycle[dev] = state;
        if let ServeBackend::Fleet(fleet) = &mut *self.backend {
            fleet.set_lifecycle(dev, state);
        }
    }

    /// Routes request `i` through the scheduler, falling back to the
    /// least-loaded active device when the policy picks a device that is
    /// parked, draining, or out of range.
    fn route(&mut self, i: usize) -> usize {
        let view = self.view();
        let dev = self.sched.route(&self.views[i], &view);
        if dev < self.lifecycle.len() && self.lifecycle[dev] == DeviceLifecycle::Active {
            dev
        } else {
            view.shortest_active()
                .expect("fleet has at least one active device")
        }
    }

    /// Admits from device `dev`'s queue while it has free slots, running
    /// each admitted request's kernel on the simulator (the same launch
    /// arithmetic as the shard-parallel path).
    fn try_admit(&mut self, dev: usize, now: f64, events: &mut FEventQueue<Ev>) {
        while self.free[dev] > 0 && !self.queues[dev].is_empty() {
            let pos = self.sched.select(dev, &self.queues[dev], &self.views, now);
            let i = self.queues[dev]
                .remove(pos)
                .expect("select returned a position inside the queue");
            self.free[dev] -= 1;
            self.outstanding[dev] += 1;
            self.max_outstanding[dev] = self.max_outstanding[dev].max(self.outstanding[dev]);
            let req = self.requests[i];
            let args = self.workload.launch_args(&req, dev);

            let (inst, switch_skew_ns) = match &mut *self.backend {
                ServeBackend::Device(device) => (
                    m2func_or_direct_launch(device, self.mechanism, req.tenant, args),
                    0.0,
                ),
                ServeBackend::Fleet(fleet) => {
                    let issue = self.clock.cycles_from_ns(now);
                    let (inst, arrival) = if self.mechanism == OffloadMechanism::M2Func {
                        fleet
                            .m2func_launch_on(issue, dev, req.tenant, args)
                            .expect("serving launch must not be rejected")
                    } else {
                        fleet
                            .launch_on(issue, dev, args)
                            .expect("serving launch must not be rejected")
                    };
                    (
                        inst,
                        self.clock.ns_from_cycles(arrival.saturating_sub(issue)),
                    )
                }
            };
            let device = self.backend.device_mut(dev);
            let t0 = device.now();
            let done = device.run_until_finished(inst);
            let service_ns = self.clock.ns_from_cycles(done - t0);
            self.launches += 1;
            self.workload
                .verify(&req, dev, self.backend.device(dev))
                .expect("request must verify functionally");

            let start = now + switch_skew_ns + self.pre;
            let kernel_done = start + service_ns;
            let observed = kernel_done + self.post;
            let slot_free_at = if self.direct { observed } else { kernel_done };
            events.schedule(
                slot_free_at,
                Ev::SlotFree {
                    dev,
                    idx: i,
                    latency_ns: observed - req.arrival_ns,
                },
            );
            self.records.push((
                i,
                ReqRecord {
                    tenant: req.tenant,
                    seq: req.seq,
                    device: dev,
                    arrival_ns: req.arrival_ns,
                    admitted_ns: now,
                    start_ns: start,
                    service_ns,
                    observed_ns: observed,
                },
            ));
        }
    }

    /// One bounded work-steal: if `dev` is active, has a free slot and an
    /// empty queue, ask the scheduler for a victim and move that queue's
    /// newest request over.
    fn maybe_steal(&mut self, dev: usize, now: f64, events: &mut FEventQueue<Ev>) {
        if self.lifecycle[dev] != DeviceLifecycle::Active
            || self.free[dev] == 0
            || !self.queues[dev].is_empty()
        {
            return;
        }
        let view = self.view();
        let Some(victim) = self.sched.steal(dev, &view) else {
            return;
        };
        if victim == dev || victim >= self.queues.len() {
            return;
        }
        let Some(i) = self.queues[victim].pop_back() else {
            return;
        };
        self.queues[dev].push_back(i);
        self.try_admit(dev, now, events);
    }

    /// Activates the lowest-indexed non-active device and rebalances up to
    /// one slot-pool's worth of queued work onto it.
    fn scale_up(&mut self, now: f64, events: &mut FEventQueue<Ev>) {
        let Some(dev) =
            (0..self.lifecycle.len()).find(|&d| self.lifecycle[d] != DeviceLifecycle::Active)
        else {
            return;
        };
        // Re-activating a draining device simply cancels its drain; its
        // active interval never closed, so device-time stays correct.
        if self.active_since[dev].is_none() {
            self.active_since[dev] = Some(now);
        }
        self.set_lifecycle(dev, DeviceLifecycle::Active);
        self.active_count += 1;
        self.scale_events.push(ScaleEvent {
            t_ns: now,
            device: dev,
            dir: ScaleDir::Up,
            active: self.active_count,
        });
        for _ in 0..self.slots {
            let view = self.view();
            let Some(victim) = view.longest_active_queue() else {
                break;
            };
            if victim == dev {
                break;
            }
            let Some(i) = self.queues[victim].pop_back() else {
                break;
            };
            self.queues[dev].push_back(i);
        }
        self.try_admit(dev, now, events);
    }

    /// Starts draining the highest-indexed active device: it stops
    /// admitting, its queued requests re-route, and it parks when its
    /// in-flight kernels finish.
    fn scale_drain(&mut self, now: f64, events: &mut FEventQueue<Ev>) {
        let Some(dev) = (0..self.lifecycle.len())
            .rev()
            .find(|&d| self.lifecycle[d] == DeviceLifecycle::Active)
        else {
            return;
        };
        self.set_lifecycle(dev, DeviceLifecycle::Draining);
        self.active_count -= 1;
        self.scale_events.push(ScaleEvent {
            t_ns: now,
            device: dev,
            dir: ScaleDir::DrainStart,
            active: self.active_count,
        });
        let orphans: Vec<usize> = self.queues[dev].drain(..).collect();
        for i in orphans {
            let target = self.route(i);
            self.queues[target].push_back(i);
            self.try_admit(target, now, events);
        }
        self.finish_drain_if_idle(dev, now);
    }

    /// Parks a draining device once its last in-flight kernel finished,
    /// closing its device-time interval.
    fn finish_drain_if_idle(&mut self, dev: usize, now: f64) {
        if self.lifecycle[dev] != DeviceLifecycle::Draining || self.outstanding[dev] != 0 {
            return;
        }
        self.set_lifecycle(dev, DeviceLifecycle::Drained);
        if let Some(since) = self.active_since[dev].take() {
            self.device_time_ns += now - since;
        }
        self.scale_events.push(ScaleEvent {
            t_ns: now,
            device: dev,
            dir: ScaleDir::DrainDone,
            active: self.active_count,
        });
    }
}

/// The global serial event loop: routes each request at arrival through
/// `cfg.scheduler`, admits against live per-device slot pools, and (when
/// configured) lets the autoscaler grow and shrink the active set
/// mid-run. See the [module docs](self) for when this path is taken and
/// what it requires of the workload.
pub(super) fn run_dynamic<W: ServeWorkload + ?Sized>(
    backend: &mut ServeBackend,
    workload: &W,
    cfg: &ServeConfig,
    tenants: &[TenantSpec],
    requests: Vec<Request>,
) -> ServeReport {
    let ndev = backend.devices();
    assert!(
        ndev == 1 || workload.replicated(),
        "dynamic scheduling ({}) and autoscaling place requests off their \
         home device, which requires a workload replicated on every device \
         (ServeWorkload::replicated) — sharded workloads can only run the \
         static schedulers on a fixed fleet",
        cfg.scheduler.name()
    );
    if let Some(auto_cfg) = &cfg.autoscale {
        auto_cfg.validate(ndev);
    }
    let clock = backend.clock();
    let slots = cfg.model.max_concurrent().min(cfg.device_slots).max(1);
    let n = requests.len();

    // Home device of each request: what the HdmRouter would pick (the
    // static path's placement).
    let views: Vec<ReqView> = requests
        .iter()
        .map(|r| {
            let home = match &*backend {
                ServeBackend::Device(_) => 0,
                ServeBackend::Fleet(fleet) => {
                    let addr = workload.route_addr(r.key, ndev);
                    fleet
                        .router()
                        .device_of(addr)
                        .expect("workload routes inside the fleet HDM")
                }
            };
            ReqView {
                tenant: r.tenant,
                seq: r.seq,
                arrival_ns: r.arrival_ns,
                key: r.key,
                home,
                slo_ns: tenants[r.tenant as usize].slo_ns,
                priority: tenants[r.tenant as usize].priority,
            }
        })
        .collect();

    // An autoscaled fleet starts at min_devices and earns the rest;
    // without autoscaling every device is active for the whole run.
    let initial_active = cfg.autoscale.map_or(ndev, |a| a.min_devices);
    let mut lifecycle = vec![DeviceLifecycle::Active; ndev];
    let mut active_since = vec![Some(0.0); ndev];
    for d in initial_active..ndev {
        lifecycle[d] = DeviceLifecycle::Drained;
        active_since[d] = None;
    }
    if let ServeBackend::Fleet(fleet) = &mut *backend {
        for (d, &l) in lifecycle.iter().enumerate() {
            fleet.set_lifecycle(d, l);
        }
    }

    let mut st = DynLoop {
        backend,
        workload,
        requests: &requests,
        views,
        clock,
        mechanism: cfg.model.mechanism(),
        pre: cfg.model.pre_ns(),
        post: cfg.model.post_ns(),
        direct: cfg.model.mechanism() == OffloadMechanism::CxlIoDirect,
        slots,
        sched: cfg.scheduler.instantiate(),
        auto: cfg.autoscale.map(Autoscaler::new),
        queues: vec![VecDeque::new(); ndev],
        free: vec![slots; ndev],
        outstanding: vec![0; ndev],
        max_outstanding: vec![0; ndev],
        lifecycle,
        active_count: initial_active,
        active_since,
        device_time_ns: 0.0,
        launches: 0,
        completed: 0,
        records: Vec::with_capacity(n),
        scale_events: Vec::new(),
    };

    let mut events: FEventQueue<Ev> = FEventQueue::new();
    for (i, r) in requests.iter().enumerate() {
        events.schedule(r.arrival_ns, Ev::Arrive(i));
    }
    if let Some(auto) = &st.auto {
        events.schedule(auto.interval_ns(), Ev::Tick);
    }

    while let Some((now, ev)) = events.pop() {
        match ev {
            Ev::Arrive(i) => {
                let dev = st.route(i);
                st.queues[dev].push_back(i);
                st.try_admit(dev, now, &mut events);
            }
            Ev::SlotFree {
                dev,
                idx,
                latency_ns,
            } => {
                st.free[dev] += 1;
                st.outstanding[dev] -= 1;
                st.completed += 1;
                st.sched.on_complete(dev, &st.views[idx], latency_ns);
                if let Some(auto) = &mut st.auto {
                    auto.observe(latency_ns);
                }
                st.finish_drain_if_idle(dev, now);
                st.try_admit(dev, now, &mut events);
                st.maybe_steal(dev, now, &mut events);
            }
            Ev::Tick => {
                let view = st.view();
                st.sched.on_tick(now, &view);
                let decision = st
                    .auto
                    .as_mut()
                    .and_then(|auto| auto.decide(st.active_count));
                match decision {
                    Some(ScaleDecision::Up) => st.scale_up(now, &mut events),
                    Some(ScaleDecision::Drain) => st.scale_drain(now, &mut events),
                    None => {}
                }
                if st.completed < n {
                    if let Some(auto) = &st.auto {
                        events.schedule(now + auto.interval_ns(), Ev::Tick);
                    }
                }
            }
        }
    }
    assert_eq!(st.completed, n, "every request completes");

    // Close the still-open active intervals at the makespan.
    let makespan = st
        .records
        .iter()
        .map(|(_, r)| r.observed_ns)
        .fold(0.0f64, f64::max);
    for since in st.active_since.iter_mut() {
        if let Some(s) = since.take() {
            st.device_time_ns += makespan - s;
        }
    }

    let mut tagged = st.records;
    tagged.sort_by_key(|&(i, _)| i);
    let records: Vec<ReqRecord> = tagged.into_iter().map(|(_, r)| r).collect();
    let aux = RunAux {
        max_outstanding: st.max_outstanding,
        launches: st.launches,
        device_time_ns: Some(st.device_time_ns),
        scale_events: st.scale_events,
        route_events: true,
    };
    finish_run(backend, cfg, tenants, records, aux)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(devs: &[(usize, u32, u32, DeviceLifecycle)]) -> FleetView {
        FleetView {
            devices: devs
                .iter()
                .map(
                    |&(queue_len, outstanding, free_slots, lifecycle)| DeviceView {
                        queue_len,
                        outstanding,
                        free_slots,
                        lifecycle,
                    },
                )
                .collect(),
        }
    }

    fn rv(tenant: u16, arrival_ns: f64, slo_ns: f64, priority: u8) -> ReqView {
        ReqView {
            tenant,
            seq: 0,
            arrival_ns,
            key: 0,
            home: 1,
            slo_ns,
            priority,
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for k in SchedulerKind::all() {
            assert_eq!(SchedulerKind::parse(k.name()), Some(k));
        }
        assert_eq!(SchedulerKind::parse("nope"), None);
    }

    #[test]
    fn shortest_queue_routes_least_loaded_active() {
        use DeviceLifecycle::*;
        let mut s = SchedulerKind::ShortestQueue.instantiate();
        // Device 0 is loaded, device 1 is parked, device 2 is idle.
        let v = view(&[(3, 2, 0, Active), (0, 0, 2, Drained), (0, 1, 1, Active)]);
        assert_eq!(s.route(&rv(0, 0.0, 5e3, 0), &v), 2);
        // Ties break to the lowest index.
        let v = view(&[(1, 1, 1, Active), (1, 1, 1, Active)]);
        assert_eq!(s.route(&rv(0, 0.0, 5e3, 0), &v), 0);
    }

    #[test]
    fn home_schedulers_route_home_even_when_loaded() {
        use DeviceLifecycle::*;
        let v = view(&[(0, 0, 2, Active), (9, 9, 0, Active)]);
        for kind in [SchedulerKind::StaticFifo, SchedulerKind::HdmLocality] {
            let mut s = kind.instantiate();
            assert_eq!(s.route(&rv(0, 0.0, 5e3, 0), &v), 1, "{}", kind.name());
        }
    }

    #[test]
    fn priority_slo_selects_by_priority_then_deadline() {
        let mut s = SchedulerKind::PrioritySlo.instantiate();
        let views = vec![
            rv(0, 100.0, 5_000.0, 1), // deadline 5100, low priority
            rv(1, 200.0, 1_000.0, 0), // deadline 1200, high priority
            rv(2, 0.0, 1_000.0, 0),   // deadline 1000, high priority
        ];
        let queue: VecDeque<usize> = VecDeque::from(vec![0, 1, 2]);
        // Highest priority (0) with the earliest deadline wins: index 2.
        assert_eq!(s.select(0, &queue, &views, 0.0), 2);
        // Equal specs fall back to queue order.
        let views = vec![rv(0, 5.0, 1_000.0, 0), rv(1, 5.0, 1_000.0, 0)];
        let queue: VecDeque<usize> = VecDeque::from(vec![0, 1]);
        assert_eq!(s.select(0, &queue, &views, 0.0), 0);
    }

    #[test]
    fn priority_slo_steals_from_longest_active_queue() {
        use DeviceLifecycle::*;
        let mut s = SchedulerKind::PrioritySlo.instantiate();
        let v = view(&[(0, 0, 2, Active), (4, 1, 0, Active), (7, 1, 0, Draining)]);
        // Device 2 has the longest queue but is draining; device 1 wins.
        assert_eq!(s.steal(0, &v), Some(1));
        // Nothing queued anywhere: no steal.
        let v = view(&[(0, 0, 2, Active), (0, 1, 0, Active)]);
        assert_eq!(s.steal(0, &v), None);
    }
}
