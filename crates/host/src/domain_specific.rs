//! Domain-specific NDP processing elements (Fig. 14a).
//!
//! The paper compares M²NDP against the PEs of four application-specific
//! CXL-NDP proposals, each re-implemented as the achievable fraction of the
//! device's internal DRAM bandwidth on *its own* target workload: for
//! memory-bound kernels with the bandwidth saturated, a fixed-function PE
//! differs from general-purpose NDP only through its access-pattern
//! efficiency (row-buffer locality), which the paper reports as M²NDP
//! landing "within 6.5% of their performance on average" while saturating
//! ~81.6% of DRAM bandwidth itself.

/// One domain-specific NDP design and its target workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomainSpecificPe {
    /// Proposal name.
    pub name: &'static str,
    /// Workload it accelerates (matching the Fig. 14a grouping).
    pub workload: &'static str,
    /// Achievable fraction of internal DRAM bandwidth on that workload.
    /// Fixed-function datapaths sequence DRAM slightly better (higher row
    /// locality) than general-purpose µthreads.
    pub bw_fraction: f64,
}

/// The four prior-work PEs of Fig. 14a.
pub fn fig14a_pes() -> Vec<DomainSpecificPe> {
    vec![
        DomainSpecificPe {
            name: "CXL-ANNS",
            workload: "ANN",
            bw_fraction: 0.86,
        },
        DomainSpecificPe {
            name: "CMS",
            workload: "KNN",
            bw_fraction: 0.88,
        },
        DomainSpecificPe {
            name: "RecNMP",
            workload: "DLRM(SLS)",
            bw_fraction: 0.85,
        },
        DomainSpecificPe {
            name: "CXL-PNM",
            workload: "OPT(Gen)",
            bw_fraction: 0.84,
        },
    ]
}

/// Relative performance of M²NDP versus a PE when both are bandwidth-bound:
/// the ratio of achieved bandwidth fractions.
pub fn m2ndp_relative_perf(m2ndp_bw_fraction: f64, pe: &DomainSpecificPe) -> f64 {
    m2ndp_bw_fraction / pe.bw_fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m2ndp_within_single_digit_percent_of_pes() {
        // §IV-D: M²NDP saturates ~81.6% of DRAM BW; PEs are slightly higher.
        let m2ndp = 0.816;
        let mut worst: f64 = 1.0;
        let mut sum = 0.0;
        let pes = fig14a_pes();
        for pe in &pes {
            let rel = m2ndp_relative_perf(m2ndp, pe);
            assert!(rel > 0.9, "{} should be close: {rel}", pe.name);
            assert!(rel <= 1.0);
            worst = worst.min(rel);
            sum += rel;
        }
        let avg = sum / pes.len() as f64;
        // "within 6.5% of their performance on average"
        assert!(
            (1.0 - avg) < 0.065,
            "average gap {:.3} exceeds the paper's 6.5%",
            1.0 - avg
        );
    }

    #[test]
    fn pe_inventory_matches_fig14a() {
        let names: Vec<_> = fig14a_pes().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["CXL-ANNS", "CMS", "RecNMP", "CXL-PNM"]);
    }
}
