//! Host-side models: the baseline CPU and GPU systems with passive CXL
//! memory, the NDP offloading mechanisms, and the prior-work comparison
//! stand-ins.
//!
//! * [`cpu`] — the Table IV host CPU (64 OoO cores @ 3.2 GHz) as an
//!   MLP-window timing model: streaming phases are bounded by per-core
//!   memory-level parallelism and the CXL link; pointer-chasing phases by
//!   dependent load-to-use chains. Also models CPU-NDP (host-class cores
//!   placed inside the CXL device, §IV-A).
//! * [`offload`] — kernel-offload mechanisms: M²func over CXL.mem versus
//!   the CXL.io ring-buffer and direct-MMIO schemes (Fig. 5), including
//!   their concurrency limits, plus the open-loop throughput/tail-latency
//!   simulation behind Figs. 1b, 10b and 11a.
//! * [`serve`] — the event-driven multi-tenant serving runtime: open-loop
//!   tenant streams admitted onto *real* device simulators (a standalone
//!   [`m2ndp_core::CxlM2ndpDevice`] or a switched
//!   [`m2ndp_core::fleet::Fleet`]), one actual kernel launch per request
//!   (fig11c).
//! * [`roofline`] — the Fig. 1a roofline analysis.
//! * [`nsu`] — the NSU prior work \[81\]: host-translated addresses for every
//!   NDP access, bottlenecked on the CXL link.
//! * [`domain_specific`] — Fig. 14a's application-specific NDP processing
//!   elements (CXL-ANNS, CMS, RecNMP, CXL-PNM) as achievable-bandwidth
//!   models.
//!
//! The baseline *GPU* is not here: it reuses the M²NDP execution engine in
//! GPU mode (`m2ndp_core::EngineConfig::gpu_host`) with its data homed in
//! the remote CXL window — see `m2ndp_core::device`.

#![warn(missing_docs)]

pub mod cpu;
pub mod domain_specific;
pub mod nsu;
pub mod offload;
pub mod roofline;
pub mod serve;

pub use cpu::{HostCpu, HostCpuConfig};
pub use offload::{OffloadMechanism, OffloadSim};
pub use roofline::Roofline;
pub use serve::{ServeBackend, ServeConfig, TenantSpec};
