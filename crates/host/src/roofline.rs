//! Roofline analysis (Fig. 1a): attainable performance of memory-bound
//! workloads with data in local memory (1024 GB/s) versus CXL memory
//! (128 GB/s in the figure's two-link configuration).

/// A roofline: peak compute throughput and memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak arithmetic throughput, ops/s.
    pub peak_ops: f64,
    /// Memory bandwidth, bytes/s.
    pub bw: f64,
}

impl Roofline {
    /// Fig. 1a's local-memory roof (1024 GB/s, the GPU's HBM2).
    pub fn local_memory(peak_ops: f64) -> Self {
        Self {
            peak_ops,
            bw: 1024.0e9,
        }
    }

    /// Fig. 1a's CXL-memory roof (128 GB/s: two x8 links).
    pub fn cxl_memory(peak_ops: f64) -> Self {
        Self {
            peak_ops,
            bw: 128.0e9,
        }
    }

    /// Attainable performance (ops/s) at operational intensity `oi`
    /// (ops/byte): `min(peak, oi × bw)`.
    pub fn attainable(&self, oi: f64) -> f64 {
        (oi * self.bw).min(self.peak_ops)
    }

    /// The ridge point: the intensity where the workload stops being
    /// bandwidth-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_ops / self.bw
    }
}

/// A workload point on the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadPoint {
    /// Name for reporting.
    pub name: &'static str,
    /// Operational intensity (ops/byte).
    pub oi: f64,
}

/// The Fig. 1a workload set with their measured operational intensities
/// (all far below the ridge point — memory-bound by construction).
pub fn fig1a_workloads() -> Vec<WorkloadPoint> {
    vec![
        WorkloadPoint {
            name: "HISTO4096",
            oi: 0.25,
        },
        WorkloadPoint {
            name: "SPMV",
            oi: 0.25,
        },
        WorkloadPoint {
            name: "PGRANK",
            oi: 0.35,
        },
        WorkloadPoint {
            name: "SSSP",
            oi: 0.30,
        },
        WorkloadPoint {
            name: "DLRM(B32)",
            oi: 0.5,
        },
        WorkloadPoint {
            name: "OPT-30B",
            oi: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEAK: f64 = 35.6e12; // RTX 3090-class FP32 peak

    #[test]
    fn memory_bound_region_scales_with_bw() {
        let local = Roofline::local_memory(PEAK);
        let cxl = Roofline::cxl_memory(PEAK);
        let oi = 0.5;
        let ratio = local.attainable(oi) / cxl.attainable(oi);
        assert!((ratio - 8.0).abs() < 1e-9, "1024/128 = 8x, got {ratio}");
    }

    #[test]
    fn compute_bound_region_is_flat() {
        let local = Roofline::local_memory(PEAK);
        let big_oi = local.ridge() * 100.0;
        assert_eq!(local.attainable(big_oi), PEAK);
    }

    #[test]
    fn paper_slowdowns_up_to_9_9x() {
        // Fig. 1a reports up to 9.9× (avg 6.3×) slowdown for CXL-resident
        // data. All our points are memory-bound, so the slowdown is the BW
        // ratio capped by the ridge — verify every point is BW-bound and
        // the slowdown is 8× (the two-roof ratio; the paper's >8× cases
        // include latency effects beyond the pure roofline).
        let local = Roofline::local_memory(PEAK);
        let cxl = Roofline::cxl_memory(PEAK);
        for w in fig1a_workloads() {
            assert!(w.oi < cxl.ridge(), "{} must be memory-bound", w.name);
            let slowdown = local.attainable(w.oi) / cxl.attainable(w.oi);
            assert!(slowdown > 1.0);
            assert!(slowdown <= 10.0);
        }
    }
}
