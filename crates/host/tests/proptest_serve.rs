//! Property tests for the fixed open-loop `OffloadSim` and the
//! event-driven serving runtime: latencies are never below the mechanism
//! overhead, FIFO admission preserves per-tenant order on every device,
//! direct MMIO never exceeds one outstanding kernel, and a standalone
//! device matches a 1-device fleet up to the switch hop.
//!
//! The serving cases drive real device simulators, so they use small
//! request budgets and few proptest cases; the closed-form `OffloadSim`
//! cases are cheap and run at the usual counts.

use std::collections::HashMap;

use m2ndp_core::fleet::{Fleet, FleetConfig};
use m2ndp_core::{CxlM2ndpDevice, M2ndpConfig};
use m2ndp_cxl::SwitchConfig;
use m2ndp_host::offload::{OffloadMechanism, OffloadModel, OffloadSim};
use m2ndp_host::serve::{self, KvServeWorkload, ServeBackend, ServeConfig, TenantSpec};
use proptest::prelude::*;

/// Maps a drawn index onto a mechanism (the vendored proptest subset has
/// no `prop_oneof`).
fn mechanism(idx: u8) -> OffloadMechanism {
    match idx % 3 {
        0 => OffloadMechanism::M2Func,
        1 => OffloadMechanism::CxlIoRingBuffer,
        _ => OffloadMechanism::CxlIoDirect,
    }
}

fn small_cfg() -> M2ndpConfig {
    let mut cfg = M2ndpConfig::default_device();
    cfg.engine.units = 2;
    cfg
}

fn backend(devices: usize) -> ServeBackend {
    if devices == 1 {
        ServeBackend::Device(Box::new(CxlM2ndpDevice::new(small_cfg())))
    } else {
        ServeBackend::Fleet(Box::new(Fleet::new(FleetConfig {
            devices,
            device: small_cfg(),
            switch: SwitchConfig::default(),
            hdm_bytes_per_device: 64 << 20,
        })))
    }
}

fn tenants(requests: usize, rate: f64, seed: u64) -> Vec<TenantSpec> {
    vec![
        TenantSpec::poisson("poisson", rate * 0.6)
            .requests(requests)
            .slo_ns(10_000.0)
            .seed(seed),
        TenantSpec::trace("trace", vec![0.5e9 / rate, 2.0e9 / rate])
            .requests(requests / 2)
            .slo_ns(10_000.0)
            .seed(seed ^ 0xF00D),
    ]
}

fn serve_all(
    devices: usize,
    mech: OffloadMechanism,
    requests: usize,
    rate: f64,
    seed: u64,
) -> serve::ServeReport {
    let mut be = backend(devices);
    let mut wl = KvServeWorkload::build(&mut be, 512, 0.9);
    let cfg = ServeConfig::with_defaults(mech);
    serve::run(&mut be, &mut wl, &cfg, &tenants(requests, rate, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Closed-form sim: every latency is at least the mechanism overhead
    /// plus the smallest service time, and all are finite.
    #[test]
    fn offload_latencies_never_below_overhead(
        mech_idx in 0u8..3,
        rate in 1e4f64..1e9,
        n in 20usize..400,
        seed in any::<u64>(),
        service in proptest::collection::vec(50.0f64..5_000.0, 1..4),
    ) {
        let model = OffloadModel::with_defaults(mechanism(mech_idx));
        let overhead = model.overhead_ns();
        let min_service = service.iter().copied().fold(f64::INFINITY, f64::min);
        let res = OffloadSim::new(model, 48).run(n, rate, &service, seed);
        prop_assert_eq!(res.latencies.count(), n);
        for &l in res.latencies.samples() {
            prop_assert!(l.is_finite());
            prop_assert!(
                l >= overhead + min_service - 1e-9,
                "latency {l} below floor {}",
                overhead + min_service
            );
        }
    }

    /// The steady-window throughput never exceeds the slot pool's service
    /// capacity (with a small windowing tolerance) and is positive.
    #[test]
    fn offload_throughput_is_bounded_by_capacity(
        mech_idx in 0u8..3,
        rate in 1e5f64..1e9,
        seed in any::<u64>(),
        service in 100.0f64..2_000.0,
    ) {
        let mech = mechanism(mech_idx);
        let model = OffloadModel::with_defaults(mech);
        let slots = f64::from(model.max_concurrent());
        // A slot is busy for pre+service (M2func/RB) or the full
        // round trip (direct MMIO).
        let occupancy = if mech == OffloadMechanism::CxlIoDirect {
            model.overhead_ns() + service
        } else {
            model.pre_ns() + service
        };
        let capacity = slots / (occupancy * 1e-9);
        let res = OffloadSim::new(model, 48).run(600, rate, &[service], seed);
        prop_assert!(res.throughput > 0.0);
        prop_assert!(
            res.throughput <= capacity * 1.05,
            "throughput {:.3e} exceeds capacity {:.3e}",
            res.throughput,
            capacity
        );
    }

    /// Burst arrivals are monotone non-decreasing and their long-run mean
    /// rate converges to the configured rate — the property that keeps
    /// bursty cells comparable to Poisson cells at the same offered load.
    #[test]
    fn burst_mean_rate_converges_to_configured_rate(
        rate in 1e5f64..2e7,
        burst_factor in 1.0f64..16.0,
        period_us in 10.0f64..200.0,
        seed in any::<u64>(),
    ) {
        // Size the sample to span ~20 burst periods: a window shorter than
        // a period sees mostly the burst (or mostly the lull) phase and
        // its empirical rate says nothing about the configured mean.
        let per_period = rate * period_us * 1_000.0 * 1e-9;
        let n = (per_period * 20.0).max(2_000.0).ceil() as usize;
        let spec = TenantSpec::burst("bursty", rate, burst_factor, period_us * 1_000.0)
            .requests(n)
            .seed(seed);
        let times = serve::arrival_times(&spec);
        prop_assert_eq!(times.len(), n);
        for w in times.windows(2) {
            prop_assert!(w[1] >= w[0], "arrivals must be monotone");
        }
        let span_s = times.last().unwrap() * 1e-9;
        prop_assert!(span_s > 0.0);
        let empirical = times.len() as f64 / span_s;
        let err = (empirical - rate).abs() / rate;
        // >= 2000 Poisson arrivals have a <= ~2.2% relative std-dev; allow
        // a generous band plus edge effects from the partial last period
        // (bounded by per_period / n <= 1/20).
        prop_assert!(
            err < 0.15,
            "empirical rate {empirical:.3e} vs configured {rate:.3e} (err {err:.3})"
        );
    }
}

proptest! {
    // Serving cases simulate real kernels: keep the budgets small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serving latencies are never below the mechanism overhead, every
    /// request completes, and per-(tenant, device) admission stays FIFO.
    #[test]
    fn serving_latency_floor_and_fifo_order(
        mech_idx in 0u8..3,
        devices in 1usize..=2,
        rate in 1e5f64..1e7,
        seed in any::<u64>(),
    ) {
        let mech = mechanism(mech_idx);
        let report = serve_all(devices, mech, 40, rate, seed);
        prop_assert_eq!(report.records.len(), 60);
        let floor = OffloadModel::with_defaults(mech).overhead_ns();
        let mut last: HashMap<(u16, usize), (u64, f64)> = HashMap::new();
        for r in &report.records {
            prop_assert!(
                r.latency_ns() >= floor,
                "latency {} below overhead {floor}",
                r.latency_ns()
            );
            prop_assert!(r.admitted_ns >= r.arrival_ns);
            if let Some(&(seq, adm)) = last.get(&(r.tenant, r.device)) {
                prop_assert!(r.seq > seq, "per-tenant order violated");
                prop_assert!(r.admitted_ns >= adm, "admission time went backwards");
            }
            last.insert((r.tenant, r.device), (r.seq, r.admitted_ns));
        }
    }

    /// Direct MMIO never has more than one kernel outstanding per device,
    /// even under saturating load.
    #[test]
    fn serving_direct_mmio_single_outstanding(
        devices in 1usize..=2,
        rate in 1e6f64..1e8,
        seed in any::<u64>(),
    ) {
        let report = serve_all(devices, OffloadMechanism::CxlIoDirect, 40, rate, seed);
        for (d, &m) in report.max_outstanding.iter().enumerate() {
            prop_assert!(m <= 1, "device {d} had {m} kernels outstanding");
        }
    }

    /// A standalone device and a 1-device fleet serve the identical
    /// request stream with identical kernel service times; the only
    /// divergence allowed is the switch's per-launch delivery skew.
    #[test]
    fn serving_single_device_matches_one_device_fleet(
        rate in 1e5f64..2e6,
        seed in any::<u64>(),
    ) {
        let single = serve_all(1, OffloadMechanism::M2Func, 40, rate, seed);

        let mut be = ServeBackend::Fleet(Box::new(Fleet::new(FleetConfig {
            devices: 1,
            device: small_cfg(),
            switch: SwitchConfig::default(),
            hdm_bytes_per_device: 64 << 20,
        })));
        let mut wl = KvServeWorkload::build(&mut be, 512, 0.9);
        let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func);
        let fleet1 = serve::run(&mut be, &mut wl, &cfg, &tenants(40, rate, seed));

        prop_assert_eq!(single.records.len(), fleet1.records.len());
        for (s, f) in single.records.iter().zip(&fleet1.records) {
            prop_assert_eq!(s.tenant, f.tenant);
            prop_assert_eq!(s.seq, f.seq);
            prop_assert!(
                (s.service_ns - f.service_ns).abs() < 1e-9,
                "service times must be identical: {} vs {}",
                s.service_ns,
                f.service_ns
            );
            let skew = f.latency_ns() - s.latency_ns();
            prop_assert!(
                (0.0..=1_000.0).contains(&skew),
                "fleet latency may exceed the standalone path only by the \
                 switch hop: skew {skew} ns"
            );
        }
    }
}
