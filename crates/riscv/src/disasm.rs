//! Disassembler: renders a [`Program`] back into the textual dialect
//! [`crate::asm::assemble`] accepts.
//!
//! The output is *canonical*: numeric register names (`x5`, `f3`, `v2`),
//! decimal immediates, explicit two-operand `jal`, and one instruction per
//! line. Labels are reconstructed from the program's label map; branch or
//! jump targets without a named label get a synthetic `L{index}` label.
//!
//! The round-trip law `assemble(&disassemble(p)?) == Ok(p)` holds for every
//! program the assembler can produce (see `tests/asm_roundtrip.rs`). A few
//! [`Instr`] states are *not* assembler-images — e.g. `OpImm` with a
//! multiply op, or a byte-width [`Instr::Amo`] — and disassembling them
//! reports a [`DisasmError`] instead of emitting text that would not parse
//! back.

use std::collections::{BTreeMap, HashSet};

use crate::instr::{
    AmoOp, BranchCond, FCmpOp, FpOp, Instr, IntOp, Precision, Sew, VAddrMode, VCmpOp, VFpOp,
    VIntOp, VOperand, VRedOp, Width,
};
use crate::program::Program;

/// Disassembly error: the instruction has no spelling in the dialect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmError {
    /// Instruction index within the program.
    pub index: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for DisasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "instruction {}: {}", self.index, self.message)
    }
}

impl std::error::Error for DisasmError {}

fn derr<T>(index: usize, message: impl Into<String>) -> Result<T, DisasmError> {
    Err(DisasmError {
        index,
        message: message.into(),
    })
}

fn int_op_mnemonic(op: IntOp) -> &'static str {
    match op {
        IntOp::Add => "add",
        IntOp::Sub => "sub",
        IntOp::And => "and",
        IntOp::Or => "or",
        IntOp::Xor => "xor",
        IntOp::Sll => "sll",
        IntOp::Srl => "srl",
        IntOp::Sra => "sra",
        IntOp::Slt => "slt",
        IntOp::Sltu => "sltu",
        IntOp::Mul => "mul",
        IntOp::Mulh => "mulh",
        IntOp::Div => "div",
        IntOp::Divu => "divu",
        IntOp::Rem => "rem",
        IntOp::Remu => "remu",
    }
}

/// Immediate-form mnemonic, or `None` for ops with no `i` spelling.
fn int_imm_mnemonic(op: IntOp) -> Option<&'static str> {
    Some(match op {
        IntOp::Add => "addi",
        IntOp::And => "andi",
        IntOp::Or => "ori",
        IntOp::Xor => "xori",
        IntOp::Sll => "slli",
        IntOp::Srl => "srli",
        IntOp::Sra => "srai",
        IntOp::Slt => "slti",
        IntOp::Sltu => "sltiu",
        _ => return None,
    })
}

fn amo_name(op: AmoOp) -> &'static str {
    match op {
        AmoOp::Add => "add",
        AmoOp::Swap => "swap",
        AmoOp::Min => "min",
        AmoOp::Max => "max",
        AmoOp::And => "and",
        AmoOp::Or => "or",
        AmoOp::Xor => "xor",
    }
}

fn precision_suffix(p: Precision) -> &'static str {
    match p {
        Precision::S => "s",
        Precision::D => "d",
    }
}

fn sew_bits(s: Sew) -> u32 {
    s.bytes() * 8
}

/// `.vv`-family suffix selected by the operand kind.
fn vkind(operand: &VOperand) -> &'static str {
    match operand {
        VOperand::Vector(_) => "vv",
        VOperand::Scalar(_) => "vx",
        VOperand::Imm(_) => "vi",
        VOperand::Float(_) => "vf",
    }
}

fn voperand(operand: &VOperand) -> String {
    match operand {
        VOperand::Vector(r) => format!("v{r}"),
        VOperand::Scalar(r) => format!("x{r}"),
        VOperand::Imm(i) => format!("{i}"),
        VOperand::Float(r) => format!("f{r}"),
    }
}

fn mask_suffix(masked: bool) -> &'static str {
    if masked {
        ", v0.t"
    } else {
        ""
    }
}

/// Renders one instruction, resolving branch targets through `label_for`.
fn render(
    idx: usize,
    instr: &Instr,
    label_for: &dyn Fn(usize) -> String,
) -> Result<String, DisasmError> {
    let s = match instr {
        Instr::Li { rd, imm } => format!("li x{rd}, {imm}"),
        Instr::Lui { rd, imm } => format!("lui x{rd}, {imm}"),
        Instr::Op { op, rd, rs1, rs2 } => {
            format!("{} x{rd}, x{rs1}, x{rs2}", int_op_mnemonic(*op))
        }
        Instr::OpImm { op, rd, rs1, imm } => match int_imm_mnemonic(*op) {
            Some(m) => format!("{m} x{rd}, x{rs1}, {imm}"),
            None => {
                return derr(
                    idx,
                    format!("`{op:?}` has no immediate form in the dialect"),
                )
            }
        },
        Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let m = match (width, signed) {
                (Width::B, true) => "lb",
                (Width::H, true) => "lh",
                (Width::W, true) => "lw",
                (Width::D, true) => "ld",
                (Width::B, false) => "lbu",
                (Width::H, false) => "lhu",
                (Width::W, false) => "lwu",
                (Width::D, false) => "ldu",
            };
            format!("{m} x{rd}, {offset}(x{rs1})")
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let m = match width {
                Width::B => "sb",
                Width::H => "sh",
                Width::W => "sw",
                Width::D => "sd",
            };
            format!("{m} x{rs2}, {offset}(x{rs1})")
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let m = match cond {
                BranchCond::Eq => "beq",
                BranchCond::Ne => "bne",
                BranchCond::Lt => "blt",
                BranchCond::Ge => "bge",
                BranchCond::Ltu => "bltu",
                BranchCond::Geu => "bgeu",
            };
            format!("{m} x{rs1}, x{rs2}, {}", label_for(*target))
        }
        Instr::Jal { rd, target } => format!("jal x{rd}, {}", label_for(*target)),
        Instr::Jalr { rd, rs1, offset } => format!("jalr x{rd}, {offset}(x{rs1})"),
        Instr::Amo {
            op,
            width,
            rd,
            rs2,
            rs1,
        } => {
            let w = match width {
                Width::W => "w",
                Width::D => "d",
                _ => return derr(idx, "AMO width must be W or D"),
            };
            format!("amo{}.{w} x{rd}, x{rs2}, (x{rs1})", amo_name(*op))
        }
        Instr::Fence => "fence".to_string(),
        Instr::Halt => "halt".to_string(),

        Instr::FLoad {
            precision,
            rd,
            rs1,
            offset,
        } => {
            let m = match precision {
                Precision::S => "flw",
                Precision::D => "fld",
            };
            format!("{m} f{rd}, {offset}(x{rs1})")
        }
        Instr::FStore {
            precision,
            rs2,
            rs1,
            offset,
        } => {
            let m = match precision {
                Precision::S => "fsw",
                Precision::D => "fsd",
            };
            format!("{m} f{rs2}, {offset}(x{rs1})")
        }
        Instr::FOp {
            op,
            precision,
            rd,
            rs1,
            rs2,
        } => {
            let p = precision_suffix(*precision);
            match op {
                FpOp::Sqrt | FpOp::Exp => {
                    if *rs2 != 0 {
                        return derr(idx, format!("unary `{op:?}` requires rs2 = 0"));
                    }
                    let m = if *op == FpOp::Sqrt { "fsqrt" } else { "fexp" };
                    format!("{m}.{p} f{rd}, f{rs1}")
                }
                _ => {
                    let m = match op {
                        FpOp::Add => "fadd",
                        FpOp::Sub => "fsub",
                        FpOp::Mul => "fmul",
                        FpOp::Div => "fdiv",
                        FpOp::Min => "fmin",
                        FpOp::Max => "fmax",
                        FpOp::Sgnj => "fsgnj",
                        FpOp::Sgnjn => "fsgnjn",
                        FpOp::Sgnjx => "fsgnjx",
                        FpOp::Sqrt | FpOp::Exp => unreachable!(),
                    };
                    format!("{m}.{p} f{rd}, f{rs1}, f{rs2}")
                }
            }
        }
        Instr::FMadd {
            precision,
            rd,
            rs1,
            rs2,
            rs3,
        } => format!(
            "fmadd.{} f{rd}, f{rs1}, f{rs2}, f{rs3}",
            precision_suffix(*precision)
        ),
        Instr::FCmp {
            op,
            precision,
            rd,
            rs1,
            rs2,
        } => {
            let m = match op {
                FCmpOp::Eq => "feq",
                FCmpOp::Lt => "flt",
                FCmpOp::Le => "fle",
            };
            format!("{m}.{} x{rd}, f{rs1}, f{rs2}", precision_suffix(*precision))
        }
        Instr::FCvtFromInt {
            precision,
            rd,
            rs1,
            signed,
        } => {
            let from = if *signed { "l" } else { "lu" };
            format!("fcvt.{}.{from} f{rd}, x{rs1}", precision_suffix(*precision))
        }
        Instr::FCvtToInt {
            precision,
            rd,
            rs1,
            signed,
        } => {
            let to = if *signed { "l" } else { "lu" };
            format!("fcvt.{to}.{} x{rd}, f{rs1}", precision_suffix(*precision))
        }
        Instr::FMvToInt { precision, rd, rs1 } => {
            let w = match precision {
                Precision::S => "w",
                Precision::D => "d",
            };
            format!("fmv.x.{w} x{rd}, f{rs1}")
        }
        Instr::FMvFromInt { precision, rd, rs1 } => {
            let w = match precision {
                Precision::S => "w",
                Precision::D => "d",
            };
            format!("fmv.{w}.x f{rd}, x{rs1}")
        }
        Instr::FCvtPrec { to, rd, rs1 } => {
            let m = match to {
                Precision::D => "fcvt.d.s",
                Precision::S => "fcvt.s.d",
            };
            format!("{m} f{rd}, f{rs1}")
        }

        Instr::Vsetvli { rd, rs1, sew } => {
            format!("vsetvli x{rd}, x{rs1}, e{}", sew_bits(*sew))
        }
        Instr::VLoad {
            eew,
            vd,
            rs1,
            mode,
            masked,
        } => {
            let e = sew_bits(*eew);
            let msk = mask_suffix(*masked);
            match mode {
                VAddrMode::Unit => format!("vle{e}.v v{vd}, (x{rs1}){msk}"),
                VAddrMode::Strided(r) => format!("vlse{e}.v v{vd}, (x{rs1}), x{r}{msk}"),
                VAddrMode::Indexed(r) => format!("vluxei{e}.v v{vd}, (x{rs1}), v{r}{msk}"),
            }
        }
        Instr::VStore {
            eew,
            vs3,
            rs1,
            mode,
            masked,
        } => {
            let e = sew_bits(*eew);
            let msk = mask_suffix(*masked);
            match mode {
                VAddrMode::Unit => format!("vse{e}.v v{vs3}, (x{rs1}){msk}"),
                VAddrMode::Strided(r) => format!("vsse{e}.v v{vs3}, (x{rs1}), x{r}{msk}"),
                VAddrMode::Indexed(r) => format!("vsuxei{e}.v v{vs3}, (x{rs1}), v{r}{msk}"),
            }
        }
        Instr::VIntOp {
            op,
            vd,
            vs2,
            operand,
            masked,
        } => {
            let m = match op {
                VIntOp::Add => "vadd",
                VIntOp::Sub => "vsub",
                VIntOp::Mul => "vmul",
                VIntOp::And => "vand",
                VIntOp::Or => "vor",
                VIntOp::Xor => "vxor",
                VIntOp::Sll => "vsll",
                VIntOp::Srl => "vsrl",
                VIntOp::Min => "vmin",
                VIntOp::Max => "vmax",
            };
            format!(
                "{m}.{} v{vd}, v{vs2}, {}{}",
                vkind(operand),
                voperand(operand),
                mask_suffix(*masked)
            )
        }
        Instr::VFpOp {
            op,
            vd,
            vs2,
            operand,
            masked,
        } => {
            let msk = mask_suffix(*masked);
            match op {
                VFpOp::Macc => format!(
                    "vfmacc.{} v{vd}, {}, v{vs2}{msk}",
                    vkind(operand),
                    voperand(operand)
                ),
                VFpOp::Exp => {
                    if *operand != VOperand::Imm(0) {
                        return derr(idx, "vfexp requires operand Imm(0)");
                    }
                    format!("vfexp.v v{vd}, v{vs2}{msk}")
                }
                _ => {
                    let m = match op {
                        VFpOp::Add => "vfadd",
                        VFpOp::Sub => "vfsub",
                        VFpOp::Mul => "vfmul",
                        VFpOp::Div => "vfdiv",
                        VFpOp::Min => "vfmin",
                        VFpOp::Max => "vfmax",
                        VFpOp::Macc | VFpOp::Exp => unreachable!(),
                    };
                    format!(
                        "{m}.{} v{vd}, v{vs2}, {}{msk}",
                        vkind(operand),
                        voperand(operand)
                    )
                }
            }
        }
        Instr::VRed { op, vd, vs2, vs1 } => {
            let m = match op {
                VRedOp::Sum => "vredsum",
                VRedOp::Max => "vredmax",
                VRedOp::Min => "vredmin",
                VRedOp::FSum => "vfredusum",
                VRedOp::FMax => "vfredmax",
                VRedOp::FMin => "vfredmin",
            };
            format!("{m}.vs v{vd}, v{vs2}, v{vs1}")
        }
        Instr::VCmp {
            op,
            vd,
            vs2,
            operand,
        } => {
            let m = match op {
                VCmpOp::Eq => "vmseq",
                VCmpOp::Ne => "vmsne",
                VCmpOp::Lt => "vmslt",
                VCmpOp::Le => "vmsle",
                VCmpOp::Gt => "vmsgt",
                VCmpOp::Ge => "vmsge",
                VCmpOp::FLt => "vmflt",
                VCmpOp::FLe => "vmfle",
                VCmpOp::FEq => "vmfeq",
                VCmpOp::FGe => "vmfge",
            };
            format!(
                "{m}.{} v{vd}, v{vs2}, {}",
                vkind(operand),
                voperand(operand)
            )
        }
        Instr::VMv { vd, operand } => match operand {
            VOperand::Vector(r) => format!("vmv.v.v v{vd}, v{r}"),
            VOperand::Scalar(r) => format!("vmv.v.x v{vd}, x{r}"),
            VOperand::Imm(i) => format!("vmv.v.i v{vd}, {i}"),
            VOperand::Float(r) => format!("vfmv.v.f v{vd}, f{r}"),
        },
        Instr::VMvToScalar { rd, vs2 } => format!("vmv.x.s x{rd}, v{vs2}"),
        Instr::VMvFromScalar { vd, rs1 } => format!("vmv.s.x v{vd}, x{rs1}"),
        Instr::VFMvToScalar { rd, vs2 } => format!("vfmv.f.s f{rd}, v{vs2}"),
        Instr::Vid { vd, masked } => format!("vid.v v{vd}{}", mask_suffix(*masked)),
        Instr::VMerge { vd, vs2, operand } => {
            let k = match operand {
                VOperand::Vector(_) => "vvm",
                VOperand::Scalar(_) => "vxm",
                VOperand::Imm(_) => "vim",
                VOperand::Float(_) => "vfm",
            };
            format!("vmerge.{k} v{vd}, v{vs2}, {}, v0", voperand(operand))
        }
        Instr::VSlidedown { vd, vs2, operand } => format!(
            "vslidedown.{} v{vd}, v{vs2}, {}",
            vkind(operand),
            voperand(operand)
        ),
        Instr::VAmo {
            op,
            eew,
            vd,
            rs1,
            vs2,
            masked,
        } => format!(
            "vamo{}ei{}.v v{vd}, (x{rs1}), v{vs2}{}",
            amo_name(*op),
            sew_bits(*eew),
            mask_suffix(*masked)
        ),
    };
    Ok(s)
}

/// Disassembles a program into canonical dialect text.
///
/// Every label in the program's label map is emitted on its own line at its
/// index (indices past the last instruction included); branch/jump targets
/// not covered by a named label get a synthetic `L{index}` label. Re-running
/// [`crate::asm::assemble`] on the output reconstructs an equal [`Program`]
/// (instructions *and* label map).
///
/// # Errors
/// Returns a [`DisasmError`] for instruction states the dialect cannot
/// spell (see the module docs) or for branch targets outside
/// `0..=program.len()`.
pub fn disassemble(program: &Program) -> Result<String, DisasmError> {
    let len = program.len();

    // Label names per index, sorted for deterministic output.
    let mut at: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut names: HashSet<String> = HashSet::new();
    for (name, &index) in program.labels() {
        at.entry(index).or_default().push(name.clone());
        names.insert(name.clone());
    }
    for v in at.values_mut() {
        v.sort();
    }

    // Synthesize labels for uncovered branch/jump targets.
    for (idx, instr) in program.instrs().iter().enumerate() {
        let target = match instr {
            Instr::Branch { target, .. } | Instr::Jal { target, .. } => *target,
            _ => continue,
        };
        if target > len {
            return derr(idx, format!("branch target {target} out of range"));
        }
        if at.contains_key(&target) {
            continue;
        }
        let mut name = format!("L{target}");
        let mut bump = 0usize;
        while names.contains(&name) {
            name = format!("L{target}_{bump}");
            bump += 1;
        }
        names.insert(name.clone());
        at.insert(target, vec![name]);
    }

    let label_for = |target: usize| -> String {
        at.get(&target)
            .and_then(|v| v.first())
            .cloned()
            .unwrap_or_else(|| format!("L{target}"))
    };

    let mut out = String::new();
    for (idx, instr) in program.instrs().iter().enumerate() {
        if let Some(labels) = at.get(&idx) {
            for l in labels {
                out.push_str(l);
                out.push_str(":\n");
            }
        }
        out.push_str("    ");
        out.push_str(&render(idx, instr, &label_for)?);
        out.push('\n');
    }
    // Labels at or past the end of the program (e.g. a `done:` fall-through
    // target after the last instruction).
    for (&index, labels) in at.range(len..) {
        let _ = index;
        for l in labels {
            out.push_str(l);
            out.push_str(":\n");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn roundtrip(src: &str) {
        let p = assemble(src).expect("assemble");
        let text = disassemble(&p).expect("disassemble");
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("reassemble failed: {e:?}\n{text}"));
        assert_eq!(p, p2, "round-trip mismatch:\n{text}");
    }

    #[test]
    fn scalar_roundtrip() {
        roundtrip(
            "start: li x3, 256
             addi x4, x3, -8
             sub  x5, x0, x4
             ld   x6, 8(x5)
             ldu  x7, 0(x5)
             sd   x6, 0(x3)
             amoadd.d x8, x6, (x3)
             beq  x6, x0, start
             jal  x1, end
             jalr x0, 0(x1)
             fence
             end: halt",
        );
    }

    #[test]
    fn float_roundtrip() {
        roundtrip(
            "fld f1, 8(x2)
             fadd.d f2, f1, f1
             fmadd.d f3, f1, f2, f2
             fsqrt.d f4, f3
             fexp.d f5, f4
             feq.d x5, f4, f5
             fcvt.l.d x6, f5
             fcvt.d.l f6, x6
             fcvt.d.lu f7, x6
             fmv.x.d x7, f7
             fmv.d.x f8, x7
             fcvt.s.d f9, f8
             fcvt.d.s f10, f9
             fsd f10, 0(x2)",
        );
    }

    #[test]
    fn vector_roundtrip() {
        roundtrip(
            "vsetvli x5, x0, e32
             vle32.v v2, (x10)
             vlse64.v v3, (x11), x6
             vluxei32.v v4, (x12), v2
             vadd.vx v5, v2, x7
             vfmacc.vf v6, f10, v5
             vfexp.v v7, v6
             vmslt.vx v0, v2, x8
             vadd.vi v8, v5, 3, v0.t
             vmerge.vxm v9, v8, x9, v0
             vredsum.vs v10, v8, v9
             vfredusum.vs v11, v6, v7
             vslidedown.vi v12, v10, 1
             vid.v v13
             vmv.v.i v14, -5
             vmv.x.s x13, v14
             vmv.s.x v15, x13
             vfmv.f.s f11, v11
             vfmv.v.f v16, f11
             vamoaddei32.v v17, (x14), v4, v0.t
             vse32.v v17, (x14)",
        );
    }

    #[test]
    fn synthetic_labels_for_unnamed_targets() {
        // Branch target index 0 has no label in the source map after
        // assembling... it does (`start` missing here): force the case by
        // constructing the program directly.
        let p = Program::new(
            vec![
                Instr::Li { rd: 5, imm: 1 },
                Instr::Branch {
                    cond: BranchCond::Ne,
                    rs1: 5,
                    rs2: 0,
                    target: 0,
                },
                Instr::Halt,
            ],
            std::collections::HashMap::new(),
        );
        let text = disassemble(&p).expect("disassemble");
        assert!(text.contains("L0:"), "missing synthetic label:\n{text}");
        let p2 = assemble(&text).expect("reassemble");
        assert_eq!(p.instrs(), p2.instrs());
        assert_eq!(p2.label("L0"), Some(0));
    }

    #[test]
    fn non_representable_states_error() {
        let p = Program::new(
            vec![Instr::OpImm {
                op: IntOp::Mul,
                rd: 1,
                rs1: 2,
                imm: 3,
            }],
            std::collections::HashMap::new(),
        );
        let e = disassemble(&p).expect_err("muli must not disassemble");
        assert_eq!(e.index, 0);

        let p = Program::new(
            vec![Instr::Amo {
                op: AmoOp::Add,
                width: Width::B,
                rd: 1,
                rs2: 2,
                rs1: 3,
            }],
            std::collections::HashMap::new(),
        );
        assert!(disassemble(&p).is_err());
    }
}
