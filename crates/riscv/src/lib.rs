//! The NDP instruction set: a RISC-V RV64IMAFD + V (RVV) subset with the
//! paper's NDP extensions, an assembler, and a functional executor.
//!
//! M²NDP kernels are written in assembly (§IV-B: "Since the compiler for
//! M²NDP is not available yet, the kernels were implemented with assembly").
//! This crate provides everything needed to run them:
//!
//! * [`instr`] — the instruction forms: scalar integer (I/M), scalar float
//!   (F/D), atomics (A, plus the vector-AMO extension \[12\]), and vector
//!   (RVV 256-bit as configured in Table IV: "256-bit vector units");
//! * [`asm`] — a text assembler with labels, ABI register names, and the
//!   usual pseudo-instructions (`li`, `mv`, `j`, `ret`, `halt`);
//! * [`disasm`] — the inverse: canonical text from a [`Program`], with
//!   label reconstruction, satisfying `assemble(disassemble(p)) == p`;
//! * [`gen`] — seeded random instruction/program generators used by the
//!   round-trip and differential property tests (and the fuzz-style CLI);
//! * [`exec`] — a functional executor: [`exec::ThreadCtx`] holds one
//!   µthread's architectural state; [`exec::step`] executes one instruction
//!   against a [`exec::MemIface`] and returns an [`exec::Effect`] that the
//!   timing layer (in `m2ndp-core`) charges to functional units and the
//!   memory system. [`exec::step_group`] is the engine's hot path: it
//!   decodes an instruction once and executes it across a whole SIMT
//!   group, reporting memory operations through a reusable
//!   [`exec::EffectBuf`] — semantically identical to per-lane `step`,
//!   which stays in-tree as the reference implementation.
//!
//! Two deliberate deviations from stock RVV, both called out in the paper:
//! µthreads receive their mapped address and offset in `x1`/`x2` when
//! spawned (§III-E), and the SFU exposes `fexp.s` for softmax-style kernels
//! (GPU-style special function unit; the paper's NDP unit has scalar and
//! vector SFUs in Table IV).
//!
//! # Example
//!
//! ```
//! use m2ndp_riscv::asm::assemble;
//! use m2ndp_riscv::exec::{step, MainMemoryIface, ThreadCtx};
//! use m2ndp_mem::MainMemory;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble(
//!     "li x3, 40
//!      add x4, x3, x3
//!      halt",
//! )?;
//! let mut mem = MainMemory::new();
//! let mut iface = MainMemoryIface::new(&mut mem);
//! let mut ctx = ThreadCtx::new();
//! while !ctx.done {
//!     step(&mut ctx, &prog, &mut iface)?;
//! }
//! assert_eq!(ctx.x[4], 80);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod disasm;
pub mod exec;
pub mod gen;
pub mod instr;
pub mod program;

pub use asm::{assemble, AsmError};
pub use disasm::{disassemble, DisasmError};
pub use exec::{
    step, step_group, Effect, EffectBuf, EffectClass, ExecError, GroupStep, MemIface, MemOp,
    ThreadCtx,
};
pub use instr::Instr;
pub use program::{classify, FuClass, InstrClass, Program};

/// Vector register length in bytes (VLEN = 256 bits, Table IV).
pub const VLEN_BYTES: usize = 32;
