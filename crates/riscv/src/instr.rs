//! Instruction forms for the NDP unit's RISC-V subset.
//!
//! Operands follow hardware register numbering: `x0`–`x31` (x0 hardwired to
//! zero), `f0`–`f31`, `v0`–`v31`. The assembler accepts ABI names too.

/// Integer ALU operations (register-register and register-immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntOp {
    /// Addition.
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Multiply (low 64 bits) — M extension.
    Mul,
    /// Multiply high (signed) — M extension.
    Mulh,
    /// Divide (signed) — M extension.
    Div,
    /// Divide (unsigned) — M extension.
    Divu,
    /// Remainder (signed) — M extension.
    Rem,
    /// Remainder (unsigned) — M extension.
    Remu,
}

impl IntOp {
    /// Whether this op executes on the (longer-latency) multiplier/divider.
    pub fn is_muldiv(&self) -> bool {
        matches!(
            self,
            IntOp::Mul | IntOp::Mulh | IntOp::Div | IntOp::Divu | IntOp::Rem | IntOp::Remu
        )
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Greater or equal (signed).
    Ge,
    /// Less than (unsigned).
    Ltu,
    /// Greater or equal (unsigned).
    Geu,
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl Width {
    /// Size in bytes.
    pub fn bytes(&self) -> u32 {
        match self {
            Width::B => 1,
            Width::H => 2,
            Width::W => 4,
            Width::D => 8,
        }
    }
}

/// Atomic memory operations (A extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmoOp {
    /// Fetch-and-add.
    Add,
    /// Swap.
    Swap,
    /// Fetch-and-min (signed).
    Min,
    /// Fetch-and-max (signed).
    Max,
    /// Fetch-and-and.
    And,
    /// Fetch-and-or.
    Or,
    /// Fetch-and-xor.
    Xor,
}

/// Floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// f32 (".s").
    S,
    /// f64 (".d").
    D,
}

impl Precision {
    /// Element bytes.
    pub fn bytes(&self) -> u32 {
        match self {
            Precision::S => 4,
            Precision::D => 8,
        }
    }
}

/// Scalar floating-point computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (SFU-class latency).
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Square root (SFU).
    Sqrt,
    /// e^x (NDP SFU extension; used by softmax kernels).
    Exp,
    /// Sign-injection (fsgnj; fmv.s/fneg.s/fabs.s pseudos build on it).
    Sgnj,
    /// Sign-injection negated.
    Sgnjn,
    /// Sign-injection xor.
    Sgnjx,
}

/// Scalar float comparisons (write 0/1 to an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FCmpOp {
    /// Equal.
    Eq,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
}

/// Selected element width for vector operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sew {
    /// 8-bit elements.
    E8,
    /// 16-bit elements.
    E16,
    /// 32-bit elements.
    E32,
    /// 64-bit elements.
    E64,
}

impl Sew {
    /// Element size in bytes.
    pub fn bytes(&self) -> u32 {
        match self {
            Sew::E8 => 1,
            Sew::E16 => 2,
            Sew::E32 => 4,
            Sew::E64 => 8,
        }
    }
}

/// Vector integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VIntOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

/// Vector floating-point operations (SEW selects f32/f64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VFpOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Fused multiply-accumulate: vd += vs2 * operand.
    Macc,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// e^x per element (vector SFU extension).
    Exp,
}

/// Vector reductions (scalar result in element 0 of vd).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VRedOp {
    /// Integer sum: `vd[0] = vs1[0] + sum(vs2)`.
    Sum,
    /// Integer max.
    Max,
    /// Integer min.
    Min,
    /// Float ordered sum (vfredusum/vfredosum).
    FSum,
    /// Float max.
    FMax,
    /// Float min.
    FMin,
}

/// Vector compares, writing a mask (bit per element) into vd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VCmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Less or equal (signed).
    Le,
    /// Greater than (signed).
    Gt,
    /// Greater or equal (signed).
    Ge,
    /// Float less than.
    FLt,
    /// Float less or equal.
    FLe,
    /// Float equal.
    FEq,
    /// Float greater or equal.
    FGe,
}

/// Second source operand of a vector instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VOperand {
    /// `.vv` — another vector register.
    Vector(u8),
    /// `.vx` — a scalar integer register.
    Scalar(u8),
    /// `.vi` — an immediate.
    Imm(i64),
    /// `.vf` — a scalar float register.
    Float(u8),
}

/// Vector memory addressing modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VAddrMode {
    /// Unit-stride (`vle*/vse*`).
    Unit,
    /// Constant stride from an x register (`vlse*/vsse*`).
    Strided(u8),
    /// Indexed by a vector of offsets (`vluxei*/vsuxei*`): the index
    /// register.
    Indexed(u8),
}

/// One decoded instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ----- scalar integer -----
    /// Load immediate (pseudo; materializes any 64-bit constant).
    Li {
        /// Destination.
        rd: u8,
        /// The constant.
        imm: i64,
    },
    /// Load upper immediate.
    Lui {
        /// Destination.
        rd: u8,
        /// The 20-bit immediate (shifted left 12).
        imm: i64,
    },
    /// Register-register ALU op.
    Op {
        /// Operation.
        op: IntOp,
        /// Destination.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// Register-immediate ALU op.
    OpImm {
        /// Operation (Sub not allowed; use negative Add immediate).
        op: IntOp,
        /// Destination.
        rd: u8,
        /// Source.
        rs1: u8,
        /// Immediate.
        imm: i64,
    },
    /// Scalar load.
    Load {
        /// Access width.
        width: Width,
        /// Sign-extend (false = zero-extend, the `u` forms).
        signed: bool,
        /// Destination.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Scalar store.
    Store {
        /// Access width.
        width: Width,
        /// Source data register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch to a resolved instruction index.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First compare source.
        rs1: u8,
        /// Second compare source.
        rs2: u8,
        /// Target instruction index.
        target: usize,
    },
    /// Jump-and-link to a resolved instruction index.
    Jal {
        /// Link register (x0 for plain `j`).
        rd: u8,
        /// Target instruction index.
        target: usize,
    },
    /// Indirect jump (used by `ret`).
    Jalr {
        /// Link register.
        rd: u8,
        /// Target base register.
        rs1: u8,
        /// Byte offset added to the register (must be instruction-aligned).
        offset: i64,
    },
    /// Atomic memory operation: `rd = M[rs1]; M[rs1] = op(M[rs1], rs2)`.
    Amo {
        /// Operation.
        op: AmoOp,
        /// W or D.
        width: Width,
        /// Destination (old value).
        rd: u8,
        /// Operand register.
        rs2: u8,
        /// Address register.
        rs1: u8,
    },
    /// Memory fence (ordering only; no timing cost modeled beyond issue).
    Fence,
    /// Terminates the µthread (NDP pseudo; GPUs use `exit` similarly).
    Halt,

    // ----- scalar float -----
    /// Float load.
    FLoad {
        /// S or D.
        precision: Precision,
        /// Destination float register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Float store.
    FStore {
        /// S or D.
        precision: Precision,
        /// Source float register.
        rs2: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Float compute op (rs2 ignored for unary Sqrt/Exp).
    FOp {
        /// Operation.
        op: FpOp,
        /// S or D.
        precision: Precision,
        /// Destination float register.
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// Fused multiply-add: rd = rs1 * rs2 + rs3.
    FMadd {
        /// S or D.
        precision: Precision,
        /// Destination.
        rd: u8,
        /// Multiplicand.
        rs1: u8,
        /// Multiplier.
        rs2: u8,
        /// Addend.
        rs3: u8,
    },
    /// Float comparison into an integer register.
    FCmp {
        /// Comparison.
        op: FCmpOp,
        /// S or D.
        precision: Precision,
        /// Integer destination (0/1).
        rd: u8,
        /// First source.
        rs1: u8,
        /// Second source.
        rs2: u8,
    },
    /// Integer-to-float conversion (fcvt.s.w / fcvt.d.l etc.).
    FCvtFromInt {
        /// Target precision.
        precision: Precision,
        /// Float destination.
        rd: u8,
        /// Integer source.
        rs1: u8,
        /// Treat source as signed.
        signed: bool,
    },
    /// Float-to-integer conversion (truncating).
    FCvtToInt {
        /// Source precision.
        precision: Precision,
        /// Integer destination.
        rd: u8,
        /// Float source.
        rs1: u8,
        /// Produce signed result.
        signed: bool,
    },
    /// Bit-pattern move between float and int registers (fmv.x.w etc.).
    FMvToInt {
        /// Precision (selects 32/64-bit pattern).
        precision: Precision,
        /// Integer destination.
        rd: u8,
        /// Float source.
        rs1: u8,
    },
    /// Bit-pattern move from int to float register.
    FMvFromInt {
        /// Precision.
        precision: Precision,
        /// Float destination.
        rd: u8,
        /// Integer source.
        rs1: u8,
    },
    /// Precision conversion (fcvt.d.s / fcvt.s.d).
    FCvtPrec {
        /// Destination precision.
        to: Precision,
        /// Float destination.
        rd: u8,
        /// Float source.
        rs1: u8,
    },

    // ----- vector -----
    /// vsetvli: sets vl and SEW. rd receives the granted vl.
    Vsetvli {
        /// Destination for granted vl.
        rd: u8,
        /// Requested element count (x0 = maximum).
        rs1: u8,
        /// Element width.
        sew: Sew,
    },
    /// Vector load.
    VLoad {
        /// Element width moved per element (EEW).
        eew: Sew,
        /// Destination vector register.
        vd: u8,
        /// Base address register.
        rs1: u8,
        /// Addressing mode.
        mode: VAddrMode,
        /// Execute under mask v0 (", v0.t").
        masked: bool,
    },
    /// Vector store.
    VStore {
        /// Element width.
        eew: Sew,
        /// Source vector register.
        vs3: u8,
        /// Base address register.
        rs1: u8,
        /// Addressing mode.
        mode: VAddrMode,
        /// Execute under mask v0.
        masked: bool,
    },
    /// Vector integer arithmetic.
    VIntOp {
        /// Operation.
        op: VIntOp,
        /// Destination.
        vd: u8,
        /// vs2 (first vector source).
        vs2: u8,
        /// Second operand (.vv/.vx/.vi).
        operand: VOperand,
        /// Execute under mask v0.
        masked: bool,
    },
    /// Vector float arithmetic.
    VFpOp {
        /// Operation.
        op: VFpOp,
        /// Destination (also accumulator for Macc).
        vd: u8,
        /// vs2.
        vs2: u8,
        /// Second operand (.vv/.vf).
        operand: VOperand,
        /// Execute under mask v0.
        masked: bool,
    },
    /// Vector reduction: `vd[0] = op(vs1[0], elements of vs2)`.
    VRed {
        /// Reduction.
        op: VRedOp,
        /// Destination.
        vd: u8,
        /// Reduced vector.
        vs2: u8,
        /// Scalar seed vector (element 0).
        vs1: u8,
    },
    /// Vector compare writing a mask into vd (bit per element).
    VCmp {
        /// Comparison.
        op: VCmpOp,
        /// Mask destination.
        vd: u8,
        /// vs2.
        vs2: u8,
        /// Second operand.
        operand: VOperand,
    },
    /// vmv.v.v / vmv.v.x / vmv.v.i / vfmv.v.f — splat or copy.
    VMv {
        /// Destination.
        vd: u8,
        /// Source operand.
        operand: VOperand,
    },
    /// vmv.x.s — element 0 of vs2 to integer register.
    VMvToScalar {
        /// Integer destination.
        rd: u8,
        /// Vector source.
        vs2: u8,
    },
    /// vmv.s.x — integer register to element 0 (rest unchanged).
    VMvFromScalar {
        /// Vector destination.
        vd: u8,
        /// Integer source.
        rs1: u8,
    },
    /// vfmv.f.s — element 0 of vs2 to float register.
    VFMvToScalar {
        /// Float destination.
        rd: u8,
        /// Vector source.
        vs2: u8,
    },
    /// vid.v — `vd[i] = i`.
    Vid {
        /// Destination.
        vd: u8,
        /// Execute under mask v0.
        masked: bool,
    },
    /// vmerge.vvm/vxm/vim: `vd[i] = mask[i] ? operand[i] : vs2[i]`.
    VMerge {
        /// Destination.
        vd: u8,
        /// "false" source.
        vs2: u8,
        /// "true" operand.
        operand: VOperand,
    },
    /// vslidedown.vx/vi — `vd[i] = vs2[i + offset]`.
    VSlidedown {
        /// Destination.
        vd: u8,
        /// Source.
        vs2: u8,
        /// Slide amount.
        operand: VOperand,
    },
    /// Vector AMO (\[12\]): per-element atomic op at base + index.
    VAmo {
        /// The atomic operation.
        op: AmoOp,
        /// Element width of the memory values.
        eew: Sew,
        /// Source/old-value register (written back with old values).
        vd: u8,
        /// Base address register.
        rs1: u8,
        /// Index vector (byte offsets).
        vs2: u8,
        /// Execute under mask v0.
        masked: bool,
    },
}

impl Instr {
    /// Whether the instruction touches memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Amo { .. }
                | Instr::FLoad { .. }
                | Instr::FStore { .. }
                | Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::VAmo { .. }
        )
    }

    /// Whether the instruction is a vector operation.
    pub fn is_vector(&self) -> bool {
        matches!(
            self,
            Instr::Vsetvli { .. }
                | Instr::VLoad { .. }
                | Instr::VStore { .. }
                | Instr::VIntOp { .. }
                | Instr::VFpOp { .. }
                | Instr::VRed { .. }
                | Instr::VCmp { .. }
                | Instr::VMv { .. }
                | Instr::VMvToScalar { .. }
                | Instr::VMvFromScalar { .. }
                | Instr::VFMvToScalar { .. }
                | Instr::Vid { .. }
                | Instr::VMerge { .. }
                | Instr::VSlidedown { .. }
                | Instr::VAmo { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B.bytes(), 1);
        assert_eq!(Width::D.bytes(), 8);
        assert_eq!(Sew::E32.bytes(), 4);
    }

    #[test]
    fn muldiv_classification() {
        assert!(IntOp::Mul.is_muldiv());
        assert!(IntOp::Rem.is_muldiv());
        assert!(!IntOp::Add.is_muldiv());
    }

    #[test]
    fn classification_helpers() {
        let ld = Instr::Load {
            width: Width::D,
            signed: true,
            rd: 1,
            rs1: 2,
            offset: 0,
        };
        assert!(ld.is_mem());
        assert!(!ld.is_vector());
        let v = Instr::Vid {
            vd: 1,
            masked: false,
        };
        assert!(v.is_vector());
        assert!(!v.is_mem());
    }
}
