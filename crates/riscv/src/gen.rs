//! Seeded random instruction and program generators.
//!
//! These drive the toolchain property tests (`tests/asm_roundtrip.rs`): the
//! round-trip law `assemble(disassemble(p)) == p` and the differential
//! decode-vs-execute check. Generation is plain seeded [`rand`] — each seed
//! yields one deterministic program, so a failing case reproduces from its
//! printed seed alone.
//!
//! Generated instructions stay inside the *assembler image*: every state a
//! generator emits can be spelled in the dialect (`OpImm` only uses the
//! nine immediate-form ops, unary float ops carry `rs2 = 0`, `vfexp` uses
//! operand `Imm(0)`, AMO widths are W/D). Register indices are always valid
//! (`< 32`). Branch/jump targets land in `0..=len` and every target gets a
//! named label, so the label map round-trips exactly.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instr::{
    AmoOp, BranchCond, FCmpOp, FpOp, Instr, IntOp, Precision, Sew, VAddrMode, VCmpOp, VFpOp,
    VIntOp, VOperand, VRedOp, Width,
};
use crate::program::Program;

fn xr(rng: &mut StdRng) -> u8 {
    rng.gen_range(0..32u8)
}

fn imm(rng: &mut StdRng) -> i64 {
    // Mix small immediates (common in real kernels) with full-range values
    // (exercise the `i64::MIN`/hex parsing edge cases).
    match rng.gen_range(0..4u8) {
        0 => rng.gen::<i64>(),
        1 => rng.gen_range(-16i64..=16),
        2 => i64::MIN,
        _ => rng.gen_range(-4096i64..=4096),
    }
}

fn width(rng: &mut StdRng) -> Width {
    match rng.gen_range(0..4u8) {
        0 => Width::B,
        1 => Width::H,
        2 => Width::W,
        _ => Width::D,
    }
}

fn sew(rng: &mut StdRng) -> Sew {
    match rng.gen_range(0..4u8) {
        0 => Sew::E8,
        1 => Sew::E16,
        2 => Sew::E32,
        _ => Sew::E64,
    }
}

fn precision(rng: &mut StdRng) -> Precision {
    if rng.gen_bool(0.5) {
        Precision::S
    } else {
        Precision::D
    }
}

fn amo_op(rng: &mut StdRng) -> AmoOp {
    match rng.gen_range(0..7u8) {
        0 => AmoOp::Add,
        1 => AmoOp::Swap,
        2 => AmoOp::Min,
        3 => AmoOp::Max,
        4 => AmoOp::And,
        5 => AmoOp::Or,
        _ => AmoOp::Xor,
    }
}

fn int_op(rng: &mut StdRng) -> IntOp {
    match rng.gen_range(0..16u8) {
        0 => IntOp::Add,
        1 => IntOp::Sub,
        2 => IntOp::And,
        3 => IntOp::Or,
        4 => IntOp::Xor,
        5 => IntOp::Sll,
        6 => IntOp::Srl,
        7 => IntOp::Sra,
        8 => IntOp::Slt,
        9 => IntOp::Sltu,
        10 => IntOp::Mul,
        11 => IntOp::Mulh,
        12 => IntOp::Div,
        13 => IntOp::Divu,
        14 => IntOp::Rem,
        _ => IntOp::Remu,
    }
}

/// One of the nine ops that have an immediate-form mnemonic.
fn int_imm_op(rng: &mut StdRng) -> IntOp {
    match rng.gen_range(0..9u8) {
        0 => IntOp::Add,
        1 => IntOp::And,
        2 => IntOp::Or,
        3 => IntOp::Xor,
        4 => IntOp::Sll,
        5 => IntOp::Srl,
        6 => IntOp::Sra,
        7 => IntOp::Slt,
        _ => IntOp::Sltu,
    }
}

fn voperand(rng: &mut StdRng) -> VOperand {
    match rng.gen_range(0..4u8) {
        0 => VOperand::Vector(xr(rng)),
        1 => VOperand::Scalar(xr(rng)),
        2 => VOperand::Imm(imm(rng)),
        _ => VOperand::Float(xr(rng)),
    }
}

fn vaddr_mode(rng: &mut StdRng) -> VAddrMode {
    match rng.gen_range(0..3u8) {
        0 => VAddrMode::Unit,
        1 => VAddrMode::Strided(xr(rng)),
        _ => VAddrMode::Indexed(xr(rng)),
    }
}

/// Generates one random assembler-image instruction.
///
/// `len` is the instruction count of the program under construction;
/// branch/jump targets are drawn from `0..=len` (one past the end is a
/// legal fall-through target).
#[allow(clippy::too_many_lines)]
pub fn gen_instr(rng: &mut StdRng, len: usize) -> Instr {
    let target = |rng: &mut StdRng| rng.gen_range(0..=len);
    match rng.gen_range(0..33u8) {
        0 => Instr::Li {
            rd: xr(rng),
            imm: imm(rng),
        },
        1 => Instr::Lui {
            rd: xr(rng),
            imm: imm(rng),
        },
        2 => Instr::Op {
            op: int_op(rng),
            rd: xr(rng),
            rs1: xr(rng),
            rs2: xr(rng),
        },
        3 => Instr::OpImm {
            op: int_imm_op(rng),
            rd: xr(rng),
            rs1: xr(rng),
            imm: imm(rng),
        },
        4 => Instr::Load {
            width: width(rng),
            signed: rng.gen_bool(0.5),
            rd: xr(rng),
            rs1: xr(rng),
            offset: imm(rng),
        },
        5 => Instr::Store {
            width: width(rng),
            rs2: xr(rng),
            rs1: xr(rng),
            offset: imm(rng),
        },
        6 => Instr::Branch {
            cond: match rng.gen_range(0..6u8) {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                2 => BranchCond::Lt,
                3 => BranchCond::Ge,
                4 => BranchCond::Ltu,
                _ => BranchCond::Geu,
            },
            rs1: xr(rng),
            rs2: xr(rng),
            target: target(rng),
        },
        7 => Instr::Jal {
            rd: xr(rng),
            target: target(rng),
        },
        8 => Instr::Jalr {
            rd: xr(rng),
            rs1: xr(rng),
            offset: imm(rng),
        },
        9 => Instr::Amo {
            op: amo_op(rng),
            width: if rng.gen_bool(0.5) {
                Width::W
            } else {
                Width::D
            },
            rd: xr(rng),
            rs2: xr(rng),
            rs1: xr(rng),
        },
        10 => Instr::Fence,
        11 => Instr::Halt,
        12 => Instr::FLoad {
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
            offset: imm(rng),
        },
        13 => Instr::FStore {
            precision: precision(rng),
            rs2: xr(rng),
            rs1: xr(rng),
            offset: imm(rng),
        },
        14 => {
            let op = match rng.gen_range(0..11u8) {
                0 => FpOp::Add,
                1 => FpOp::Sub,
                2 => FpOp::Mul,
                3 => FpOp::Div,
                4 => FpOp::Min,
                5 => FpOp::Max,
                6 => FpOp::Sqrt,
                7 => FpOp::Exp,
                8 => FpOp::Sgnj,
                9 => FpOp::Sgnjn,
                _ => FpOp::Sgnjx,
            };
            // Unary SFU ops carry rs2 = 0 in assembler-image form.
            let rs2 = if matches!(op, FpOp::Sqrt | FpOp::Exp) {
                0
            } else {
                xr(rng)
            };
            Instr::FOp {
                op,
                precision: precision(rng),
                rd: xr(rng),
                rs1: xr(rng),
                rs2,
            }
        }
        15 => Instr::FMadd {
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
            rs2: xr(rng),
            rs3: xr(rng),
        },
        16 => Instr::FCmp {
            op: match rng.gen_range(0..3u8) {
                0 => FCmpOp::Eq,
                1 => FCmpOp::Lt,
                _ => FCmpOp::Le,
            },
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
            rs2: xr(rng),
        },
        17 => Instr::FCvtFromInt {
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
            signed: rng.gen_bool(0.5),
        },
        18 => Instr::FCvtToInt {
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
            signed: rng.gen_bool(0.5),
        },
        19 => Instr::FMvToInt {
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
        },
        20 => Instr::FMvFromInt {
            precision: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
        },
        21 => Instr::FCvtPrec {
            to: precision(rng),
            rd: xr(rng),
            rs1: xr(rng),
        },
        22 => Instr::Vsetvli {
            rd: xr(rng),
            rs1: xr(rng),
            sew: sew(rng),
        },
        23 => Instr::VLoad {
            eew: sew(rng),
            vd: xr(rng),
            rs1: xr(rng),
            mode: vaddr_mode(rng),
            masked: rng.gen_bool(0.25),
        },
        24 => Instr::VStore {
            eew: sew(rng),
            vs3: xr(rng),
            rs1: xr(rng),
            mode: vaddr_mode(rng),
            masked: rng.gen_bool(0.25),
        },
        25 => Instr::VIntOp {
            op: match rng.gen_range(0..10u8) {
                0 => VIntOp::Add,
                1 => VIntOp::Sub,
                2 => VIntOp::Mul,
                3 => VIntOp::And,
                4 => VIntOp::Or,
                5 => VIntOp::Xor,
                6 => VIntOp::Sll,
                7 => VIntOp::Srl,
                8 => VIntOp::Min,
                _ => VIntOp::Max,
            },
            vd: xr(rng),
            vs2: xr(rng),
            operand: voperand(rng),
            masked: rng.gen_bool(0.25),
        },
        26 => {
            let op = match rng.gen_range(0..8u8) {
                0 => VFpOp::Add,
                1 => VFpOp::Sub,
                2 => VFpOp::Mul,
                3 => VFpOp::Div,
                4 => VFpOp::Macc,
                5 => VFpOp::Min,
                6 => VFpOp::Max,
                _ => VFpOp::Exp,
            };
            // vfexp.v's operand slot is fixed at Imm(0) by the assembler.
            let operand = if op == VFpOp::Exp {
                VOperand::Imm(0)
            } else {
                voperand(rng)
            };
            Instr::VFpOp {
                op,
                vd: xr(rng),
                vs2: xr(rng),
                operand,
                masked: rng.gen_bool(0.25),
            }
        }
        27 => Instr::VRed {
            op: match rng.gen_range(0..6u8) {
                0 => VRedOp::Sum,
                1 => VRedOp::Max,
                2 => VRedOp::Min,
                3 => VRedOp::FSum,
                4 => VRedOp::FMax,
                _ => VRedOp::FMin,
            },
            vd: xr(rng),
            vs2: xr(rng),
            vs1: xr(rng),
        },
        28 => Instr::VCmp {
            op: match rng.gen_range(0..10u8) {
                0 => VCmpOp::Eq,
                1 => VCmpOp::Ne,
                2 => VCmpOp::Lt,
                3 => VCmpOp::Le,
                4 => VCmpOp::Gt,
                5 => VCmpOp::Ge,
                6 => VCmpOp::FLt,
                7 => VCmpOp::FLe,
                8 => VCmpOp::FEq,
                _ => VCmpOp::FGe,
            },
            vd: xr(rng),
            vs2: xr(rng),
            operand: voperand(rng),
        },
        29 => match rng.gen_range(0..4u8) {
            0 => Instr::VMv {
                vd: xr(rng),
                operand: voperand(rng),
            },
            1 => Instr::VMvToScalar {
                rd: xr(rng),
                vs2: xr(rng),
            },
            2 => Instr::VMvFromScalar {
                vd: xr(rng),
                rs1: xr(rng),
            },
            _ => Instr::VFMvToScalar {
                rd: xr(rng),
                vs2: xr(rng),
            },
        },
        30 => Instr::Vid {
            vd: xr(rng),
            masked: rng.gen_bool(0.25),
        },
        31 => {
            if rng.gen_bool(0.5) {
                Instr::VMerge {
                    vd: xr(rng),
                    vs2: xr(rng),
                    operand: voperand(rng),
                }
            } else {
                Instr::VSlidedown {
                    vd: xr(rng),
                    vs2: xr(rng),
                    operand: voperand(rng),
                }
            }
        }
        _ => Instr::VAmo {
            op: amo_op(rng),
            eew: sew(rng),
            vd: xr(rng),
            rs1: xr(rng),
            vs2: xr(rng),
            masked: rng.gen_bool(0.25),
        },
    }
}

/// Generates a random well-labeled program from a seed.
///
/// Every branch/jump target is covered by a label named `L{index}`, and a
/// few unreferenced `U{index}` labels are sprinkled in (including past the
/// last instruction), so [`crate::disasm::disassemble`] reproduces the map
/// exactly and `assemble(disassemble(p)) == p` is a meaningful equality on
/// the whole [`Program`], label map included.
pub fn gen_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(1..=48usize);
    let instrs: Vec<Instr> = (0..len).map(|_| gen_instr(&mut rng, len)).collect();

    let mut labels: HashMap<String, usize> = HashMap::new();
    for instr in &instrs {
        if let Instr::Branch { target, .. } | Instr::Jal { target, .. } = instr {
            labels.insert(format!("L{target}"), *target);
        }
    }
    // Unreferenced labels exercise the "emit every label" path.
    for _ in 0..rng.gen_range(0..3usize) {
        let index = rng.gen_range(0..=len);
        labels.insert(format!("U{index}"), index);
    }
    Program::new(instrs, labels)
}

/// One instance of every `Instr` variant (assembler-image states), for
/// exhaustiveness smoke tests that don't want randomness.
pub fn all_variants() -> Vec<Instr> {
    vec![
        Instr::Li { rd: 1, imm: -1 },
        Instr::Lui { rd: 2, imm: 4096 },
        Instr::Op {
            op: IntOp::Sub,
            rd: 3,
            rs1: 4,
            rs2: 5,
        },
        Instr::OpImm {
            op: IntOp::Add,
            rd: 6,
            rs1: 7,
            imm: 8,
        },
        Instr::Load {
            width: Width::D,
            signed: false,
            rd: 8,
            rs1: 9,
            offset: -16,
        },
        Instr::Store {
            width: Width::W,
            rs2: 10,
            rs1: 11,
            offset: 4,
        },
        Instr::Branch {
            cond: BranchCond::Ltu,
            rs1: 12,
            rs2: 13,
            target: 0,
        },
        Instr::Jal { rd: 1, target: 0 },
        Instr::Jalr {
            rd: 0,
            rs1: 1,
            offset: 0,
        },
        Instr::Amo {
            op: AmoOp::Max,
            width: Width::W,
            rd: 14,
            rs2: 15,
            rs1: 16,
        },
        Instr::Fence,
        Instr::Halt,
        Instr::FLoad {
            precision: Precision::S,
            rd: 1,
            rs1: 2,
            offset: 8,
        },
        Instr::FStore {
            precision: Precision::D,
            rs2: 3,
            rs1: 4,
            offset: -8,
        },
        Instr::FOp {
            op: FpOp::Exp,
            precision: Precision::D,
            rd: 5,
            rs1: 6,
            rs2: 0,
        },
        Instr::FMadd {
            precision: Precision::S,
            rd: 7,
            rs1: 8,
            rs2: 9,
            rs3: 10,
        },
        Instr::FCmp {
            op: FCmpOp::Le,
            precision: Precision::D,
            rd: 17,
            rs1: 11,
            rs2: 12,
        },
        Instr::FCvtFromInt {
            precision: Precision::D,
            rd: 13,
            rs1: 18,
            signed: false,
        },
        Instr::FCvtToInt {
            precision: Precision::S,
            rd: 19,
            rs1: 14,
            signed: true,
        },
        Instr::FMvToInt {
            precision: Precision::D,
            rd: 20,
            rs1: 15,
        },
        Instr::FMvFromInt {
            precision: Precision::S,
            rd: 16,
            rs1: 21,
        },
        Instr::FCvtPrec {
            to: Precision::S,
            rd: 17,
            rs1: 18,
        },
        Instr::Vsetvli {
            rd: 22,
            rs1: 0,
            sew: Sew::E16,
        },
        Instr::VLoad {
            eew: Sew::E32,
            vd: 1,
            rs1: 23,
            mode: VAddrMode::Indexed(2),
            masked: true,
        },
        Instr::VStore {
            eew: Sew::E64,
            vs3: 3,
            rs1: 24,
            mode: VAddrMode::Strided(25),
            masked: false,
        },
        Instr::VIntOp {
            op: VIntOp::Min,
            vd: 4,
            vs2: 5,
            operand: VOperand::Imm(-3),
            masked: true,
        },
        Instr::VFpOp {
            op: VFpOp::Macc,
            vd: 6,
            vs2: 7,
            operand: VOperand::Float(19),
            masked: false,
        },
        Instr::VRed {
            op: VRedOp::FMin,
            vd: 8,
            vs2: 9,
            vs1: 10,
        },
        Instr::VCmp {
            op: VCmpOp::FGe,
            vd: 0,
            vs2: 11,
            operand: VOperand::Scalar(26),
        },
        Instr::VMv {
            vd: 12,
            operand: VOperand::Imm(7),
        },
        Instr::VMvToScalar { rd: 27, vs2: 13 },
        Instr::VMvFromScalar { vd: 14, rs1: 28 },
        Instr::VFMvToScalar { rd: 20, vs2: 15 },
        Instr::Vid {
            vd: 16,
            masked: true,
        },
        Instr::VMerge {
            vd: 17,
            vs2: 18,
            operand: VOperand::Vector(19),
        },
        Instr::VSlidedown {
            vd: 20,
            vs2: 21,
            operand: VOperand::Imm(2),
        },
        Instr::VAmo {
            op: AmoOp::Xor,
            eew: Sew::E64,
            vd: 22,
            rs1: 29,
            vs2: 23,
            masked: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen_program(42), gen_program(42));
        // Different seeds should (overwhelmingly) differ.
        assert_ne!(gen_program(1), gen_program(2));
    }

    #[test]
    fn generated_targets_are_labeled() {
        for seed in 0..64 {
            let p = gen_program(seed);
            for instr in p.instrs() {
                if let Instr::Branch { target, .. } | Instr::Jal { target, .. } = instr {
                    assert_eq!(p.label(&format!("L{target}")), Some(*target));
                }
            }
        }
    }

    #[test]
    fn all_variants_is_exhaustive_by_count() {
        // One entry per Instr variant (37 total). The match-exhaustive
        // classification test in crates/riscv/tests/ keeps this honest when
        // a variant is added.
        let vs = all_variants();
        assert_eq!(vs.len(), 37);
    }
}
