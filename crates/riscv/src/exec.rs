//! Functional execution of NDP kernel instructions.
//!
//! [`step`] executes one instruction of a [`Program`] against a µthread's
//! [`ThreadCtx`] and a [`MemIface`], returning an [`Effect`] that tells the
//! timing layer which functional unit the instruction occupies and which
//! memory operations it performed. Execution is *functional at issue*: data
//! values are read/written immediately, while the timing model separately
//! delays the µthread until the modeled memory responses return (§III-E —
//! µthreads execute their instructions serially, so no intra-thread
//! reordering can observe the difference; inter-thread atomics linearize in
//! issue order).
//!
//! Jump/branch targets are instruction indices; "byte" code addresses used
//! by `jal`/`jalr` link values are `index * 4`. A `jalr` whose computed
//! target is byte address 0 terminates the µthread (the spawn convention
//! initializes `ra = 0`, so a top-level `ret` ends the kernel like `halt`).

use m2ndp_mem::MainMemory;

use crate::instr::{
    AmoOp, BranchCond, FCmpOp, FpOp, Instr, IntOp, Precision, Sew, VAddrMode, VCmpOp, VFpOp,
    VIntOp, VOperand, VRedOp, Width,
};
use crate::program::Program;
use crate::VLEN_BYTES;

/// One vector register's contents.
pub type VValue = [u8; VLEN_BYTES];

/// A µthread's architectural state.
///
/// Spawn convention (§III-E): `x1` holds the mapped µthread-pool address and
/// `x2` the offset from the pool base; everything else is zero.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadCtx {
    /// Program counter as an instruction index.
    pub pc: usize,
    /// Integer registers (`x0` reads as zero).
    pub x: [u64; 32],
    /// Float registers (raw bit patterns).
    pub f: [u64; 32],
    /// Vector registers.
    pub v: [VValue; 32],
    /// Current vector length (elements).
    pub vl: u32,
    /// Current selected element width.
    pub sew: Sew,
    /// Set when the µthread has terminated.
    pub done: bool,
}

impl ThreadCtx {
    /// Fresh context with pc 0 and all state zeroed (SEW defaults to e64).
    pub fn new() -> Self {
        Self {
            pc: 0,
            x: [0; 32],
            f: [0; 32],
            v: [[0; VLEN_BYTES]; 32],
            vl: (VLEN_BYTES / 8) as u32,
            sew: Sew::E64,
            done: false,
        }
    }

    /// Spawn context for a µthread mapped to `addr` at `offset` within its
    /// pool region (§III-E: "the address and offset ... are provided in the
    /// first two non-zero-valued scalar registers, x1 and x2").
    pub fn spawned(addr: u64, offset: u64) -> Self {
        let mut ctx = Self::new();
        ctx.x[1] = addr;
        ctx.x[2] = offset;
        ctx
    }

    /// Resets this context to the [`ThreadCtx::new`] state in place.
    ///
    /// The engine reuses per-slot context storage across µthread waves:
    /// rewriting the existing registers avoids reallocating the
    /// `32 × VLEN` vector file for every spawn.
    pub fn reset(&mut self) {
        self.pc = 0;
        self.x = [0; 32];
        self.f = [0; 32];
        self.v = [[0; VLEN_BYTES]; 32];
        self.vl = (VLEN_BYTES / 8) as u32;
        self.sew = Sew::E64;
        self.done = false;
    }

    fn write_x(&mut self, rd: u8, v: u64) {
        if rd != 0 {
            self.x[rd as usize] = v;
        }
    }
}

impl Default for ThreadCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// A memory operation performed by an instruction, for the timing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address.
    pub addr: u64,
    /// Size in bytes.
    pub bytes: u32,
    /// Write (stores, and the store half of AMOs).
    pub write: bool,
    /// Atomic read-modify-write.
    pub amo: bool,
}

/// Which functional unit an instruction occupies, plus its memory behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// Scalar integer ALU (1-cycle class).
    Alu,
    /// Scalar multiplier.
    Mul,
    /// Scalar divider (long latency).
    Div,
    /// Scalar FP add/mul/fma class.
    FpAlu,
    /// Scalar special-function (sqrt, exp, fdiv).
    Sfu,
    /// Branch/jump (scalar ALU class, may redirect fetch).
    Branch,
    /// Scalar memory operation (via the scalar LSU).
    Mem(MemOp),
    /// Vector integer ALU.
    VAlu,
    /// Vector FP ALU (includes fma).
    VFpu,
    /// Vector special-function (vfdiv, vfexp).
    VSfu,
    /// Vector memory operation (via the vector LSU); one entry per element
    /// group actually accessed.
    VMem(Vec<MemOp>),
    /// vsetvli and register moves: scalar ALU class.
    VCtl,
    /// The µthread terminated.
    Halted,
}

impl Effect {
    /// This effect's payload-free classification — what the timing layer
    /// keys latency and functional-unit accounting on.
    pub fn class(&self) -> EffectClass {
        match self {
            Effect::Alu => EffectClass::Alu,
            Effect::Mul => EffectClass::Mul,
            Effect::Div => EffectClass::Div,
            Effect::FpAlu => EffectClass::FpAlu,
            Effect::Sfu => EffectClass::Sfu,
            Effect::Branch => EffectClass::Branch,
            Effect::Mem(_) => EffectClass::Mem,
            Effect::VAlu => EffectClass::VAlu,
            Effect::VFpu => EffectClass::VFpu,
            Effect::VSfu => EffectClass::VSfu,
            Effect::VMem(_) => EffectClass::VMem,
            Effect::VCtl => EffectClass::VCtl,
            Effect::Halted => EffectClass::Halted,
        }
    }
}

/// The [`Effect`] discriminant without payloads: a `Copy` classification of
/// which functional unit an instruction occupies. Memory operands travel
/// separately through an [`EffectBuf`], so reporting a group's effect never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EffectClass {
    /// Scalar integer ALU (1-cycle class).
    Alu,
    /// Scalar multiplier.
    Mul,
    /// Scalar divider (long latency).
    Div,
    /// Scalar FP add/mul/fma class.
    FpAlu,
    /// Scalar special-function (sqrt, exp, fdiv).
    Sfu,
    /// Branch/jump (scalar ALU class, may redirect fetch).
    Branch,
    /// Scalar memory operation (via the scalar LSU).
    Mem,
    /// Vector integer ALU.
    VAlu,
    /// Vector FP ALU (includes fma).
    VFpu,
    /// Vector special-function (vfdiv, vfexp).
    VSfu,
    /// Vector memory operation (via the vector LSU).
    VMem,
    /// vsetvli and register moves: scalar ALU class.
    VCtl,
    /// The µthread terminated.
    Halted,
}

/// Reusable scratch that collects the memory operations of one group issue.
///
/// [`step_group`] clears and refills it per call; the engine owns one
/// buffer and reuses it across issues, so the steady-state issue path
/// performs no heap allocation (the capacity grows to the widest group
/// once and then sticks).
#[derive(Debug, Clone, Default)]
pub struct EffectBuf {
    memops: Vec<MemOp>,
}

impl EffectBuf {
    /// An empty buffer (no capacity reserved yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the recorded operations, keeping capacity.
    pub fn clear(&mut self) {
        self.memops.clear();
    }

    /// The memory operations recorded by the last [`step_group`] call, in
    /// lane order (atomics linearize in issue order, so order matters).
    pub fn memops(&self) -> &[MemOp] {
        &self.memops
    }

    fn push(&mut self, op: MemOp) {
        self.memops.push(op);
    }
}

/// Result of one group issue: the group's effect class (from the first
/// lane that executed, `None` when every participating lane faulted) and
/// how many lanes participated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupStep {
    /// Effect class of the first successfully executed lane.
    pub effect: Option<EffectClass>,
    /// Number of lanes that participated (including faulted lanes, which
    /// are marked done — they still occupied the issue slot).
    pub lanes: u32,
}

/// Errors from functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// PC ran past the end of the program without `halt`.
    PcOutOfRange {
        /// The offending pc.
        pc: usize,
    },
    /// The µthread was already done.
    AlreadyDone,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::PcOutOfRange { pc } => {
                write!(f, "pc {pc} out of range (missing `halt`?)")
            }
            ExecError::AlreadyDone => write!(f, "µthread already terminated"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Memory access interface the executor runs against.
///
/// Implementations route scratchpad-aperture addresses to per-unit backing
/// storage and perform functional atomics.
pub trait MemIface {
    /// Reads `buf.len()` bytes at `addr`.
    fn load(&mut self, addr: u64, buf: &mut [u8]);
    /// Writes `data` at `addr`.
    fn store(&mut self, addr: u64, data: &[u8]);
    /// Atomic read-modify-write; returns the old value (sign-extended to
    /// u64 for W width).
    fn amo(&mut self, op: AmoOp, width: Width, addr: u64, operand: u64) -> u64;
}

/// Identity-mapped [`MemIface`] over a [`MainMemory`].
#[derive(Debug)]
pub struct MainMemoryIface<'a> {
    mem: &'a mut MainMemory,
}

impl<'a> MainMemoryIface<'a> {
    /// Wraps a functional memory.
    pub fn new(mem: &'a mut MainMemory) -> Self {
        Self { mem }
    }
}

/// Performs a functional AMO against a [`MainMemory`]; shared by every
/// iface implementation (device scratchpads, memory-side L2 atomics).
pub fn amo_on_memory(
    mem: &mut MainMemory,
    op: AmoOp,
    width: Width,
    addr: u64,
    operand: u64,
) -> u64 {
    match width {
        Width::W => {
            let old = mem.read_u32(addr);
            let rhs = operand as u32;
            let new = match op {
                AmoOp::Add => old.wrapping_add(rhs),
                AmoOp::Swap => rhs,
                AmoOp::Min => (old as i32).min(rhs as i32) as u32,
                AmoOp::Max => (old as i32).max(rhs as i32) as u32,
                AmoOp::And => old & rhs,
                AmoOp::Or => old | rhs,
                AmoOp::Xor => old ^ rhs,
            };
            mem.write_u32(addr, new);
            old as i32 as i64 as u64
        }
        Width::D => {
            let old = mem.read_u64(addr);
            let new = match op {
                AmoOp::Add => old.wrapping_add(operand),
                AmoOp::Swap => operand,
                AmoOp::Min => (old as i64).min(operand as i64) as u64,
                AmoOp::Max => (old as i64).max(operand as i64) as u64,
                AmoOp::And => old & operand,
                AmoOp::Or => old | operand,
                AmoOp::Xor => old ^ operand,
            };
            mem.write_u64(addr, new);
            old
        }
        _ => unreachable!("AMO widths are W or D"),
    }
}

impl MemIface for MainMemoryIface<'_> {
    fn load(&mut self, addr: u64, buf: &mut [u8]) {
        self.mem.read_bytes(addr, buf);
    }
    fn store(&mut self, addr: u64, data: &[u8]) {
        self.mem.write_bytes(addr, data);
    }
    fn amo(&mut self, op: AmoOp, width: Width, addr: u64, operand: u64) -> u64 {
        amo_on_memory(self.mem, op, width, addr, operand)
    }
}

// ---------- vector element helpers ----------

fn get_elem(v: &VValue, i: usize, sew: Sew) -> u64 {
    let b = sew.bytes() as usize;
    let mut buf = [0u8; 8];
    buf[..b].copy_from_slice(&v[i * b..i * b + b]);
    u64::from_le_bytes(buf)
}

fn get_elem_signed(v: &VValue, i: usize, sew: Sew) -> i64 {
    let raw = get_elem(v, i, sew);
    match sew {
        Sew::E8 => raw as u8 as i8 as i64,
        Sew::E16 => raw as u16 as i16 as i64,
        Sew::E32 => raw as u32 as i32 as i64,
        Sew::E64 => raw as i64,
    }
}

fn set_elem(v: &mut VValue, i: usize, sew: Sew, val: u64) {
    let b = sew.bytes() as usize;
    v[i * b..i * b + b].copy_from_slice(&val.to_le_bytes()[..b]);
}

fn get_felem(v: &VValue, i: usize, sew: Sew) -> f64 {
    match sew {
        Sew::E32 => f32::from_bits(get_elem(v, i, sew) as u32) as f64,
        Sew::E64 => f64::from_bits(get_elem(v, i, sew)),
        _ => 0.0,
    }
}

fn set_felem(v: &mut VValue, i: usize, sew: Sew, val: f64) {
    match sew {
        Sew::E32 => set_elem(v, i, sew, (val as f32).to_bits() as u64),
        Sew::E64 => set_elem(v, i, sew, val.to_bits()),
        _ => {}
    }
}

fn mask_bit(v0: &VValue, i: usize) -> bool {
    v0[i / 8] & (1 << (i % 8)) != 0
}

fn set_mask_bit(vd: &mut VValue, i: usize, val: bool) {
    if val {
        vd[i / 8] |= 1 << (i % 8);
    } else {
        vd[i / 8] &= !(1 << (i % 8));
    }
}

fn f_scalar(bits: u64, p: Precision) -> f64 {
    match p {
        Precision::S => f32::from_bits(bits as u32) as f64,
        Precision::D => f64::from_bits(bits),
    }
}

fn f_bits(val: f64, p: Precision) -> u64 {
    match p {
        Precision::S => (val as f32).to_bits() as u64,
        Precision::D => val.to_bits(),
    }
}

// ---------- the executor ----------

/// Executes the instruction at `ctx.pc`, advancing the context.
///
/// # Errors
/// Returns [`ExecError::PcOutOfRange`] if the pc walks off the program and
/// [`ExecError::AlreadyDone`] if called on a finished µthread.
#[allow(clippy::too_many_lines)]
pub fn step(
    ctx: &mut ThreadCtx,
    prog: &Program,
    mem: &mut dyn MemIface,
) -> Result<Effect, ExecError> {
    if ctx.done {
        return Err(ExecError::AlreadyDone);
    }
    let Some(instr) = prog.fetch(ctx.pc) else {
        return Err(ExecError::PcOutOfRange { pc: ctx.pc });
    };
    let mut next_pc = ctx.pc + 1;

    let effect = match instr {
        Instr::Li { rd, imm } => {
            ctx.write_x(*rd, *imm as u64);
            Effect::Alu
        }
        Instr::Lui { rd, imm } => {
            ctx.write_x(*rd, (*imm as u64).wrapping_shl(12));
            Effect::Alu
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let a = ctx.x[*rs1 as usize];
            let b = ctx.x[*rs2 as usize];
            ctx.write_x(*rd, int_op(*op, a, b));
            if op.is_muldiv() {
                if matches!(op, IntOp::Mul | IntOp::Mulh) {
                    Effect::Mul
                } else {
                    Effect::Div
                }
            } else {
                Effect::Alu
            }
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let a = ctx.x[*rs1 as usize];
            ctx.write_x(*rd, int_op(*op, a, *imm as u64));
            Effect::Alu
        }
        Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let addr = ctx.x[*rs1 as usize].wrapping_add(*offset as u64);
            let bytes = width.bytes();
            let mut buf = [0u8; 8];
            mem.load(addr, &mut buf[..bytes as usize]);
            let raw = u64::from_le_bytes(buf);
            let val = if *signed {
                match width {
                    Width::B => raw as u8 as i8 as i64 as u64,
                    Width::H => raw as u16 as i16 as i64 as u64,
                    Width::W => raw as u32 as i32 as i64 as u64,
                    Width::D => raw,
                }
            } else {
                raw
            };
            ctx.write_x(*rd, val);
            Effect::Mem(MemOp {
                addr,
                bytes,
                write: false,
                amo: false,
            })
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let addr = ctx.x[*rs1 as usize].wrapping_add(*offset as u64);
            let bytes = width.bytes();
            let data = ctx.x[*rs2 as usize].to_le_bytes();
            mem.store(addr, &data[..bytes as usize]);
            Effect::Mem(MemOp {
                addr,
                bytes,
                write: true,
                amo: false,
            })
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let a = ctx.x[*rs1 as usize];
            let b = ctx.x[*rs2 as usize];
            let taken = match cond {
                BranchCond::Eq => a == b,
                BranchCond::Ne => a != b,
                BranchCond::Lt => (a as i64) < (b as i64),
                BranchCond::Ge => (a as i64) >= (b as i64),
                BranchCond::Ltu => a < b,
                BranchCond::Geu => a >= b,
            };
            if taken {
                next_pc = *target;
            }
            Effect::Branch
        }
        Instr::Jal { rd, target } => {
            ctx.write_x(*rd, (ctx.pc as u64 + 1) * 4);
            next_pc = *target;
            Effect::Branch
        }
        Instr::Jalr { rd, rs1, offset } => {
            let target_bytes = ctx.x[*rs1 as usize].wrapping_add(*offset as u64);
            ctx.write_x(*rd, (ctx.pc as u64 + 1) * 4);
            if target_bytes == 0 {
                // Top-level `ret` (ra still 0 from spawn): terminate.
                ctx.done = true;
                return Ok(Effect::Halted);
            }
            next_pc = (target_bytes / 4) as usize;
            Effect::Branch
        }
        Instr::Amo {
            op,
            width,
            rd,
            rs2,
            rs1,
        } => {
            let addr = ctx.x[*rs1 as usize];
            let old = mem.amo(*op, *width, addr, ctx.x[*rs2 as usize]);
            ctx.write_x(*rd, old);
            Effect::Mem(MemOp {
                addr,
                bytes: width.bytes(),
                write: true,
                amo: true,
            })
        }
        Instr::Fence => Effect::Alu,
        Instr::Halt => {
            ctx.done = true;
            return Ok(Effect::Halted);
        }

        // ----- scalar float -----
        Instr::FLoad {
            precision,
            rd,
            rs1,
            offset,
        } => {
            let addr = ctx.x[*rs1 as usize].wrapping_add(*offset as u64);
            let bytes = precision.bytes();
            let mut buf = [0u8; 8];
            mem.load(addr, &mut buf[..bytes as usize]);
            ctx.f[*rd as usize] = u64::from_le_bytes(buf);
            Effect::Mem(MemOp {
                addr,
                bytes,
                write: false,
                amo: false,
            })
        }
        Instr::FStore {
            precision,
            rs2,
            rs1,
            offset,
        } => {
            let addr = ctx.x[*rs1 as usize].wrapping_add(*offset as u64);
            let bytes = precision.bytes();
            let data = ctx.f[*rs2 as usize].to_le_bytes();
            mem.store(addr, &data[..bytes as usize]);
            Effect::Mem(MemOp {
                addr,
                bytes,
                write: true,
                amo: false,
            })
        }
        Instr::FOp {
            op,
            precision,
            rd,
            rs1,
            rs2,
        } => {
            let a = f_scalar(ctx.f[*rs1 as usize], *precision);
            let b = f_scalar(ctx.f[*rs2 as usize], *precision);
            let (result, effect) = match op {
                FpOp::Add => (a + b, Effect::FpAlu),
                FpOp::Sub => (a - b, Effect::FpAlu),
                FpOp::Mul => (a * b, Effect::FpAlu),
                FpOp::Div => (a / b, Effect::Sfu),
                FpOp::Min => (a.min(b), Effect::FpAlu),
                FpOp::Max => (a.max(b), Effect::FpAlu),
                FpOp::Sqrt => (a.sqrt(), Effect::Sfu),
                FpOp::Exp => (a.exp(), Effect::Sfu),
                FpOp::Sgnj => (a.abs().copysign(b), Effect::FpAlu),
                FpOp::Sgnjn => (a.abs().copysign(-b), Effect::FpAlu),
                FpOp::Sgnjx => {
                    let sign = if (a.is_sign_negative()) ^ (b.is_sign_negative()) {
                        -1.0
                    } else {
                        1.0
                    };
                    (a.abs().copysign(sign), Effect::FpAlu)
                }
            };
            ctx.f[*rd as usize] = f_bits(result, *precision);
            effect
        }
        Instr::FMadd {
            precision,
            rd,
            rs1,
            rs2,
            rs3,
        } => {
            let a = f_scalar(ctx.f[*rs1 as usize], *precision);
            let b = f_scalar(ctx.f[*rs2 as usize], *precision);
            let c = f_scalar(ctx.f[*rs3 as usize], *precision);
            ctx.f[*rd as usize] = f_bits(a * b + c, *precision);
            Effect::FpAlu
        }
        Instr::FCmp {
            op,
            precision,
            rd,
            rs1,
            rs2,
        } => {
            let a = f_scalar(ctx.f[*rs1 as usize], *precision);
            let b = f_scalar(ctx.f[*rs2 as usize], *precision);
            let r = match op {
                FCmpOp::Eq => a == b,
                FCmpOp::Lt => a < b,
                FCmpOp::Le => a <= b,
            };
            ctx.write_x(*rd, r as u64);
            Effect::FpAlu
        }
        Instr::FCvtFromInt {
            precision,
            rd,
            rs1,
            signed,
        } => {
            let x = ctx.x[*rs1 as usize];
            let val = if *signed { x as i64 as f64 } else { x as f64 };
            ctx.f[*rd as usize] = f_bits(val, *precision);
            Effect::FpAlu
        }
        Instr::FCvtToInt {
            precision,
            rd,
            rs1,
            signed,
        } => {
            let val = f_scalar(ctx.f[*rs1 as usize], *precision);
            let out = if *signed {
                val.trunc() as i64 as u64
            } else {
                val.trunc() as u64
            };
            ctx.write_x(*rd, out);
            Effect::FpAlu
        }
        Instr::FMvToInt { precision, rd, rs1 } => {
            let bits = ctx.f[*rs1 as usize];
            let v = match precision {
                Precision::S => bits as u32 as i32 as i64 as u64,
                Precision::D => bits,
            };
            ctx.write_x(*rd, v);
            Effect::Alu
        }
        Instr::FMvFromInt { precision, rd, rs1 } => {
            let bits = ctx.x[*rs1 as usize];
            ctx.f[*rd as usize] = match precision {
                Precision::S => bits & 0xFFFF_FFFF,
                Precision::D => bits,
            };
            Effect::Alu
        }
        Instr::FCvtPrec { to, rd, rs1 } => {
            let from = match to {
                Precision::D => Precision::S,
                Precision::S => Precision::D,
            };
            let val = f_scalar(ctx.f[*rs1 as usize], from);
            ctx.f[*rd as usize] = f_bits(val, *to);
            Effect::FpAlu
        }

        // ----- vector -----
        Instr::Vsetvli { rd, rs1, sew } => {
            let max = (VLEN_BYTES as u32 * 8) / (sew.bytes() * 8);
            let requested = if *rs1 == 0 {
                max
            } else {
                (ctx.x[*rs1 as usize] as u32).min(max)
            };
            ctx.vl = requested;
            ctx.sew = *sew;
            ctx.write_x(*rd, requested as u64);
            Effect::VCtl
        }
        Instr::VLoad {
            eew,
            vd,
            rs1,
            mode,
            masked,
        } => {
            let base = ctx.x[*rs1 as usize];
            let eb = eew.bytes();
            let vl = effective_vl(ctx, *eew);
            let mut memops = Vec::new();
            let mut out = ctx.v[*vd as usize];
            match mode {
                VAddrMode::Unit => {
                    if !*masked {
                        // Whole-group contiguous access.
                        let total = vl * eb;
                        let mut buf = vec![0u8; total as usize];
                        mem.load(base, &mut buf);
                        out[..total as usize].copy_from_slice(&buf);
                        memops.push(MemOp {
                            addr: base,
                            bytes: total,
                            write: false,
                            amo: false,
                        });
                    } else {
                        for i in 0..vl as usize {
                            if !mask_bit(&ctx.v[0], i) {
                                continue;
                            }
                            let addr = base.wrapping_add(i as u64 * eb as u64);
                            let mut buf = [0u8; 8];
                            mem.load(addr, &mut buf[..eb as usize]);
                            set_elem(&mut out, i, *eew, u64::from_le_bytes(buf));
                            memops.push(MemOp {
                                addr,
                                bytes: eb,
                                write: false,
                                amo: false,
                            });
                        }
                    }
                }
                VAddrMode::Strided(rs2) => {
                    let stride = ctx.x[*rs2 as usize];
                    for i in 0..vl as usize {
                        if *masked && !mask_bit(&ctx.v[0], i) {
                            continue;
                        }
                        let addr = base.wrapping_add(stride.wrapping_mul(i as u64));
                        let mut buf = [0u8; 8];
                        mem.load(addr, &mut buf[..eb as usize]);
                        set_elem(&mut out, i, *eew, u64::from_le_bytes(buf));
                        memops.push(MemOp {
                            addr,
                            bytes: eb,
                            write: false,
                            amo: false,
                        });
                    }
                }
                VAddrMode::Indexed(vs2) => {
                    let idx = ctx.v[*vs2 as usize];
                    for i in 0..vl as usize {
                        if *masked && !mask_bit(&ctx.v[0], i) {
                            continue;
                        }
                        let addr = base.wrapping_add(get_elem(&idx, i, *eew));
                        let mut buf = [0u8; 8];
                        mem.load(addr, &mut buf[..eb as usize]);
                        set_elem(&mut out, i, *eew, u64::from_le_bytes(buf));
                        memops.push(MemOp {
                            addr,
                            bytes: eb,
                            write: false,
                            amo: false,
                        });
                    }
                }
            }
            ctx.v[*vd as usize] = out;
            Effect::VMem(memops)
        }
        Instr::VStore {
            eew,
            vs3,
            rs1,
            mode,
            masked,
        } => {
            let base = ctx.x[*rs1 as usize];
            let eb = eew.bytes();
            let vl = effective_vl(ctx, *eew);
            let src = ctx.v[*vs3 as usize];
            let mut memops = Vec::new();
            match mode {
                VAddrMode::Unit if !*masked => {
                    let total = vl * eb;
                    mem.store(base, &src[..total as usize]);
                    memops.push(MemOp {
                        addr: base,
                        bytes: total,
                        write: true,
                        amo: false,
                    });
                }
                VAddrMode::Unit => {
                    for i in 0..vl as usize {
                        if !mask_bit(&ctx.v[0], i) {
                            continue;
                        }
                        let addr = base.wrapping_add(i as u64 * eb as u64);
                        let val = get_elem(&src, i, *eew).to_le_bytes();
                        mem.store(addr, &val[..eb as usize]);
                        memops.push(MemOp {
                            addr,
                            bytes: eb,
                            write: true,
                            amo: false,
                        });
                    }
                }
                VAddrMode::Strided(rs2) => {
                    let stride = ctx.x[*rs2 as usize];
                    for i in 0..vl as usize {
                        if *masked && !mask_bit(&ctx.v[0], i) {
                            continue;
                        }
                        let addr = base.wrapping_add(stride.wrapping_mul(i as u64));
                        let val = get_elem(&src, i, *eew).to_le_bytes();
                        mem.store(addr, &val[..eb as usize]);
                        memops.push(MemOp {
                            addr,
                            bytes: eb,
                            write: true,
                            amo: false,
                        });
                    }
                }
                VAddrMode::Indexed(vs2) => {
                    let idx = ctx.v[*vs2 as usize];
                    for i in 0..vl as usize {
                        if *masked && !mask_bit(&ctx.v[0], i) {
                            continue;
                        }
                        let addr = base.wrapping_add(get_elem(&idx, i, *eew));
                        let val = get_elem(&src, i, *eew).to_le_bytes();
                        mem.store(addr, &val[..eb as usize]);
                        memops.push(MemOp {
                            addr,
                            bytes: eb,
                            write: true,
                            amo: false,
                        });
                    }
                }
            }
            Effect::VMem(memops)
        }
        Instr::VIntOp {
            op,
            vd,
            vs2,
            operand,
            masked,
        } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let b = ctx.v[*vs2 as usize];
            let mut out = ctx.v[*vd as usize];
            for i in 0..vl {
                if *masked && !mask_bit(&ctx.v[0], i) {
                    continue;
                }
                let rhs = v_operand_int(ctx, operand, i, sew);
                let lhs = get_elem(&b, i, sew);
                let val = match op {
                    VIntOp::Add => lhs.wrapping_add(rhs),
                    VIntOp::Sub => lhs.wrapping_sub(rhs),
                    VIntOp::Mul => lhs.wrapping_mul(rhs),
                    VIntOp::And => lhs & rhs,
                    VIntOp::Or => lhs | rhs,
                    VIntOp::Xor => lhs ^ rhs,
                    VIntOp::Sll => lhs << (rhs & 63),
                    VIntOp::Srl => lhs >> (rhs & 63),
                    VIntOp::Min => (get_elem_signed(&b, i, sew)).min(sign_at(rhs, sew)) as u64,
                    VIntOp::Max => (get_elem_signed(&b, i, sew)).max(sign_at(rhs, sew)) as u64,
                };
                set_elem(&mut out, i, sew, val);
            }
            ctx.v[*vd as usize] = out;
            Effect::VAlu
        }
        Instr::VFpOp {
            op,
            vd,
            vs2,
            operand,
            masked,
        } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let b = ctx.v[*vs2 as usize];
            let mut out = ctx.v[*vd as usize];
            for i in 0..vl {
                if *masked && !mask_bit(&ctx.v[0], i) {
                    continue;
                }
                let rhs = v_operand_float(ctx, operand, i, sew);
                let lhs = get_felem(&b, i, sew);
                let val = match op {
                    VFpOp::Add => lhs + rhs,
                    VFpOp::Sub => lhs - rhs,
                    VFpOp::Mul => lhs * rhs,
                    VFpOp::Div => lhs / rhs,
                    VFpOp::Macc => get_felem(&out, i, sew) + lhs * rhs,
                    VFpOp::Min => lhs.min(rhs),
                    VFpOp::Max => lhs.max(rhs),
                    VFpOp::Exp => lhs.exp(),
                };
                set_felem(&mut out, i, sew, val);
            }
            ctx.v[*vd as usize] = out;
            match op {
                VFpOp::Div | VFpOp::Exp => Effect::VSfu,
                _ => Effect::VFpu,
            }
        }
        Instr::VRed { op, vd, vs2, vs1 } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let src = ctx.v[*vs2 as usize];
            let seed = ctx.v[*vs1 as usize];
            let mut out = ctx.v[*vd as usize];
            match op {
                VRedOp::Sum | VRedOp::Max | VRedOp::Min => {
                    let mut acc = get_elem_signed(&seed, 0, sew);
                    for i in 0..vl {
                        let e = get_elem_signed(&src, i, sew);
                        acc = match op {
                            VRedOp::Sum => acc.wrapping_add(e),
                            VRedOp::Max => acc.max(e),
                            _ => acc.min(e),
                        };
                    }
                    set_elem(&mut out, 0, sew, acc as u64);
                }
                VRedOp::FSum | VRedOp::FMax | VRedOp::FMin => {
                    let mut acc = get_felem(&seed, 0, sew);
                    for i in 0..vl {
                        let e = get_felem(&src, i, sew);
                        acc = match op {
                            VRedOp::FSum => acc + e,
                            VRedOp::FMax => acc.max(e),
                            _ => acc.min(e),
                        };
                    }
                    set_felem(&mut out, 0, sew, acc);
                }
            }
            ctx.v[*vd as usize] = out;
            Effect::VFpu
        }
        Instr::VCmp {
            op,
            vd,
            vs2,
            operand,
        } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let b = ctx.v[*vs2 as usize];
            let mut out = [0u8; VLEN_BYTES];
            for i in 0..vl {
                let taken = match op {
                    VCmpOp::Eq | VCmpOp::Ne | VCmpOp::Lt | VCmpOp::Le | VCmpOp::Gt | VCmpOp::Ge => {
                        let rhs = sign_at(v_operand_int(ctx, operand, i, sew), sew);
                        let lhs = get_elem_signed(&b, i, sew);
                        match op {
                            VCmpOp::Eq => lhs == rhs,
                            VCmpOp::Ne => lhs != rhs,
                            VCmpOp::Lt => lhs < rhs,
                            VCmpOp::Le => lhs <= rhs,
                            VCmpOp::Gt => lhs > rhs,
                            _ => lhs >= rhs,
                        }
                    }
                    VCmpOp::FLt | VCmpOp::FLe | VCmpOp::FEq | VCmpOp::FGe => {
                        let rhs = v_operand_float(ctx, operand, i, sew);
                        let lhs = get_felem(&b, i, sew);
                        match op {
                            VCmpOp::FLt => lhs < rhs,
                            VCmpOp::FLe => lhs <= rhs,
                            VCmpOp::FEq => lhs == rhs,
                            _ => lhs >= rhs,
                        }
                    }
                };
                set_mask_bit(&mut out, i, taken);
            }
            ctx.v[*vd as usize] = out;
            Effect::VAlu
        }
        Instr::VMv { vd, operand } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let mut out = ctx.v[*vd as usize];
            match operand {
                VOperand::Vector(vs) => out = ctx.v[*vs as usize],
                _ => {
                    for i in 0..vl {
                        match operand {
                            VOperand::Scalar(_) | VOperand::Imm(_) => {
                                let val = v_operand_int(ctx, operand, i, sew);
                                set_elem(&mut out, i, sew, val);
                            }
                            VOperand::Float(_) => {
                                let val = v_operand_float(ctx, operand, i, sew);
                                set_felem(&mut out, i, sew, val);
                            }
                            VOperand::Vector(_) => unreachable!(),
                        }
                    }
                }
            }
            ctx.v[*vd as usize] = out;
            Effect::VCtl
        }
        Instr::VMvToScalar { rd, vs2 } => {
            let val = get_elem(&ctx.v[*vs2 as usize], 0, ctx.sew);
            ctx.write_x(*rd, val);
            Effect::VCtl
        }
        Instr::VMvFromScalar { vd, rs1 } => {
            let val = ctx.x[*rs1 as usize];
            let sew = ctx.sew;
            set_elem(&mut ctx.v[*vd as usize], 0, sew, val);
            Effect::VCtl
        }
        Instr::VFMvToScalar { rd, vs2 } => {
            let sew = ctx.sew;
            ctx.f[*rd as usize] = match sew {
                Sew::E32 => get_elem(&ctx.v[*vs2 as usize], 0, sew) & 0xFFFF_FFFF,
                _ => get_elem(&ctx.v[*vs2 as usize], 0, Sew::E64),
            };
            Effect::VCtl
        }
        Instr::Vid { vd, masked } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let mut out = ctx.v[*vd as usize];
            for i in 0..vl {
                if *masked && !mask_bit(&ctx.v[0], i) {
                    continue;
                }
                set_elem(&mut out, i, sew, i as u64);
            }
            ctx.v[*vd as usize] = out;
            Effect::VAlu
        }
        Instr::VMerge { vd, vs2, operand } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let b = ctx.v[*vs2 as usize];
            let mut out = ctx.v[*vd as usize];
            for i in 0..vl {
                let val = if mask_bit(&ctx.v[0], i) {
                    v_operand_int(ctx, operand, i, sew)
                } else {
                    get_elem(&b, i, sew)
                };
                set_elem(&mut out, i, sew, val);
            }
            ctx.v[*vd as usize] = out;
            Effect::VAlu
        }
        Instr::VSlidedown { vd, vs2, operand } => {
            let vl = ctx.vl as usize;
            let sew = ctx.sew;
            let off = v_operand_int(ctx, operand, 0, sew) as usize;
            let src = ctx.v[*vs2 as usize];
            let mut out = ctx.v[*vd as usize];
            for i in 0..vl {
                // `off` comes from an untrusted register value; a checked add
                // keeps huge slide amounts well-defined (they read zeros).
                let val = match i.checked_add(off) {
                    Some(j) if j < vl => get_elem(&src, j, sew),
                    _ => 0,
                };
                set_elem(&mut out, i, sew, val);
            }
            ctx.v[*vd as usize] = out;
            Effect::VAlu
        }
        Instr::VAmo {
            op,
            eew,
            vd,
            rs1,
            vs2,
            masked,
        } => {
            let base = ctx.x[*rs1 as usize];
            let eb = eew.bytes();
            let vl = effective_vl(ctx, *eew);
            let width = if eb == 4 { Width::W } else { Width::D };
            let idx = ctx.v[*vs2 as usize];
            let src = ctx.v[*vd as usize];
            let mut out = src;
            let mut memops = Vec::new();
            for i in 0..vl as usize {
                if *masked && !mask_bit(&ctx.v[0], i) {
                    continue;
                }
                let addr = base.wrapping_add(get_elem(&idx, i, *eew));
                let old = mem.amo(*op, width, addr, get_elem(&src, i, *eew));
                set_elem(&mut out, i, *eew, old);
                memops.push(MemOp {
                    addr,
                    bytes: eb,
                    write: true,
                    amo: true,
                });
            }
            ctx.v[*vd as usize] = out;
            Effect::VMem(memops)
        }
    };

    ctx.pc = next_pc;
    Ok(effect)
}

/// Executes one SIMT group issue: every non-done lane whose pc equals
/// `min_pc` executes the instruction at `min_pc`.
///
/// The instruction is fetched and matched **once** per group; each opcode
/// then runs a tight per-lane loop (the engine's issue loop previously
/// called [`step`] once per lane, re-matching the 37-variant instruction
/// enum every time and allocating a fresh `Vec` for every vector memory
/// effect). Memory operations are appended to `buf` in lane order —
/// identical to concatenating the per-lane [`Effect`] payloads, which
/// matters because atomics linearize in issue order — and the returned
/// [`GroupStep`] carries the first executed lane's effect class.
///
/// Semantics are bit-for-bit those of calling [`step`] on each
/// participating lane in slot order: `step` stays in-tree as the
/// reference implementation, cold opcodes delegate to it directly, and
/// `tests/asm_roundtrip.rs` drives both paths in lockstep over generated
/// programs and the kernel corpus. A fetch past the end of the program
/// marks every participating lane done, exactly as the engine treated
/// per-lane [`ExecError::PcOutOfRange`].
#[allow(clippy::too_many_lines)]
pub fn step_group(
    ctxs: &mut [ThreadCtx],
    min_pc: usize,
    prog: &Program,
    mem: &mut dyn MemIface,
    buf: &mut EffectBuf,
) -> GroupStep {
    buf.clear();
    let mut lanes = 0u32;
    let mut first: Option<EffectClass> = None;

    // Per-lane loop over the participating (non-done, pc-matching) lanes.
    macro_rules! lanes_do {
        ($ctx:ident => $body:block) => {
            for $ctx in ctxs.iter_mut() {
                if $ctx.done || $ctx.pc != min_pc {
                    continue;
                }
                lanes += 1;
                $body
            }
        };
    }

    let Some(instr) = prog.fetch(min_pc) else {
        lanes_do!(ctx => {
            ctx.done = true;
        });
        return GroupStep {
            effect: None,
            lanes,
        };
    };

    // `Some(class)` = uniform class for every lane of this opcode, recorded
    // after the loop; `None` = the arm assigned `first` itself (divergent
    // classes or delegation to the reference `step`).
    let static_class: Option<EffectClass> = match instr {
        Instr::Li { rd, imm } => {
            let (rd, imm) = (*rd, *imm);
            lanes_do!(ctx => {
                ctx.write_x(rd, imm as u64);
                ctx.pc += 1;
            });
            Some(EffectClass::Alu)
        }
        Instr::Lui { rd, imm } => {
            let (rd, imm) = (*rd, *imm);
            lanes_do!(ctx => {
                ctx.write_x(rd, (imm as u64).wrapping_shl(12));
                ctx.pc += 1;
            });
            Some(EffectClass::Alu)
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let (op, rd, rs1, rs2) = (*op, *rd, *rs1 as usize, *rs2 as usize);
            lanes_do!(ctx => {
                let a = ctx.x[rs1];
                let b = ctx.x[rs2];
                ctx.write_x(rd, int_op(op, a, b));
                ctx.pc += 1;
            });
            Some(if op.is_muldiv() {
                if matches!(op, IntOp::Mul | IntOp::Mulh) {
                    EffectClass::Mul
                } else {
                    EffectClass::Div
                }
            } else {
                EffectClass::Alu
            })
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let (op, rd, rs1, imm) = (*op, *rd, *rs1 as usize, *imm);
            lanes_do!(ctx => {
                let a = ctx.x[rs1];
                ctx.write_x(rd, int_op(op, a, imm as u64));
                ctx.pc += 1;
            });
            Some(EffectClass::Alu)
        }
        Instr::Load {
            width,
            signed,
            rd,
            rs1,
            offset,
        } => {
            let (width, signed, rd, rs1, offset) = (*width, *signed, *rd, *rs1 as usize, *offset);
            let bytes = width.bytes();
            lanes_do!(ctx => {
                let addr = ctx.x[rs1].wrapping_add(offset as u64);
                let mut lbuf = [0u8; 8];
                mem.load(addr, &mut lbuf[..bytes as usize]);
                let raw = u64::from_le_bytes(lbuf);
                let val = if signed {
                    match width {
                        Width::B => raw as u8 as i8 as i64 as u64,
                        Width::H => raw as u16 as i16 as i64 as u64,
                        Width::W => raw as u32 as i32 as i64 as u64,
                        Width::D => raw,
                    }
                } else {
                    raw
                };
                ctx.write_x(rd, val);
                buf.push(MemOp {
                    addr,
                    bytes,
                    write: false,
                    amo: false,
                });
                ctx.pc += 1;
            });
            Some(EffectClass::Mem)
        }
        Instr::Store {
            width,
            rs2,
            rs1,
            offset,
        } => {
            let (width, rs2, rs1, offset) = (*width, *rs2 as usize, *rs1 as usize, *offset);
            let bytes = width.bytes();
            lanes_do!(ctx => {
                let addr = ctx.x[rs1].wrapping_add(offset as u64);
                let data = ctx.x[rs2].to_le_bytes();
                mem.store(addr, &data[..bytes as usize]);
                buf.push(MemOp {
                    addr,
                    bytes,
                    write: true,
                    amo: false,
                });
                ctx.pc += 1;
            });
            Some(EffectClass::Mem)
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let (cond, rs1, rs2, target) = (*cond, *rs1 as usize, *rs2 as usize, *target);
            lanes_do!(ctx => {
                let a = ctx.x[rs1];
                let b = ctx.x[rs2];
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i64) < (b as i64),
                    BranchCond::Ge => (a as i64) >= (b as i64),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                ctx.pc = if taken { target } else { ctx.pc + 1 };
            });
            Some(EffectClass::Branch)
        }
        Instr::Jal { rd, target } => {
            let (rd, target) = (*rd, *target);
            lanes_do!(ctx => {
                ctx.write_x(rd, (ctx.pc as u64 + 1) * 4);
                ctx.pc = target;
            });
            Some(EffectClass::Branch)
        }
        Instr::Jalr { rd, rs1, offset } => {
            let (rd, rs1, offset) = (*rd, *rs1 as usize, *offset);
            // Divergent classes: a lane whose target is byte address 0
            // terminates (top-level `ret`), the others branch.
            lanes_do!(ctx => {
                let target_bytes = ctx.x[rs1].wrapping_add(offset as u64);
                ctx.write_x(rd, (ctx.pc as u64 + 1) * 4);
                let lane_class = if target_bytes == 0 {
                    ctx.done = true;
                    EffectClass::Halted
                } else {
                    ctx.pc = (target_bytes / 4) as usize;
                    EffectClass::Branch
                };
                if first.is_none() {
                    first = Some(lane_class);
                }
            });
            None
        }
        Instr::Amo {
            op,
            width,
            rd,
            rs2,
            rs1,
        } => {
            let (op, width, rd, rs2, rs1) = (*op, *width, *rd, *rs2 as usize, *rs1 as usize);
            lanes_do!(ctx => {
                let addr = ctx.x[rs1];
                let old = mem.amo(op, width, addr, ctx.x[rs2]);
                ctx.write_x(rd, old);
                buf.push(MemOp {
                    addr,
                    bytes: width.bytes(),
                    write: true,
                    amo: true,
                });
                ctx.pc += 1;
            });
            Some(EffectClass::Mem)
        }
        Instr::Fence => {
            lanes_do!(ctx => {
                ctx.pc += 1;
            });
            Some(EffectClass::Alu)
        }
        Instr::Halt => {
            lanes_do!(ctx => {
                ctx.done = true;
            });
            Some(EffectClass::Halted)
        }
        Instr::FLoad {
            precision,
            rd,
            rs1,
            offset,
        } => {
            let (precision, rd, rs1, offset) = (*precision, *rd as usize, *rs1 as usize, *offset);
            let bytes = precision.bytes();
            lanes_do!(ctx => {
                let addr = ctx.x[rs1].wrapping_add(offset as u64);
                let mut lbuf = [0u8; 8];
                mem.load(addr, &mut lbuf[..bytes as usize]);
                ctx.f[rd] = u64::from_le_bytes(lbuf);
                buf.push(MemOp {
                    addr,
                    bytes,
                    write: false,
                    amo: false,
                });
                ctx.pc += 1;
            });
            Some(EffectClass::Mem)
        }
        Instr::FStore {
            precision,
            rs2,
            rs1,
            offset,
        } => {
            let (precision, rs2, rs1, offset) = (*precision, *rs2 as usize, *rs1 as usize, *offset);
            let bytes = precision.bytes();
            lanes_do!(ctx => {
                let addr = ctx.x[rs1].wrapping_add(offset as u64);
                let data = ctx.f[rs2].to_le_bytes();
                mem.store(addr, &data[..bytes as usize]);
                buf.push(MemOp {
                    addr,
                    bytes,
                    write: true,
                    amo: false,
                });
                ctx.pc += 1;
            });
            Some(EffectClass::Mem)
        }
        Instr::Vsetvli { rd, rs1, sew } => {
            let (rd, rs1, sew) = (*rd, *rs1, *sew);
            let max = (VLEN_BYTES as u32 * 8) / (sew.bytes() * 8);
            lanes_do!(ctx => {
                let requested = if rs1 == 0 {
                    max
                } else {
                    (ctx.x[rs1 as usize] as u32).min(max)
                };
                ctx.vl = requested;
                ctx.sew = sew;
                ctx.write_x(rd, requested as u64);
                ctx.pc += 1;
            });
            Some(EffectClass::VCtl)
        }
        Instr::VLoad {
            eew,
            vd,
            rs1,
            mode,
            masked,
        } => {
            let (eew, vd, rs1, mode, masked) = (*eew, *vd as usize, *rs1 as usize, *mode, *masked);
            let eb = eew.bytes();
            lanes_do!(ctx => {
                let base = ctx.x[rs1];
                let vl = effective_vl(ctx, eew);
                let mut out = ctx.v[vd];
                match mode {
                    VAddrMode::Unit => {
                        if !masked {
                            // Whole-group contiguous access; a VLEN-sized
                            // stack buffer replaces `step`'s per-call heap
                            // `Vec` (vsetvli clamps vl so `total` fits).
                            let total = (vl * eb) as usize;
                            let mut lbuf = [0u8; VLEN_BYTES];
                            mem.load(base, &mut lbuf[..total]);
                            out[..total].copy_from_slice(&lbuf[..total]);
                            buf.push(MemOp {
                                addr: base,
                                bytes: vl * eb,
                                write: false,
                                amo: false,
                            });
                        } else {
                            for i in 0..vl as usize {
                                if !mask_bit(&ctx.v[0], i) {
                                    continue;
                                }
                                let addr = base.wrapping_add(i as u64 * eb as u64);
                                let mut lbuf = [0u8; 8];
                                mem.load(addr, &mut lbuf[..eb as usize]);
                                set_elem(&mut out, i, eew, u64::from_le_bytes(lbuf));
                                buf.push(MemOp {
                                    addr,
                                    bytes: eb,
                                    write: false,
                                    amo: false,
                                });
                            }
                        }
                    }
                    VAddrMode::Strided(rs2) => {
                        let stride = ctx.x[rs2 as usize];
                        for i in 0..vl as usize {
                            if masked && !mask_bit(&ctx.v[0], i) {
                                continue;
                            }
                            let addr = base.wrapping_add(stride.wrapping_mul(i as u64));
                            let mut lbuf = [0u8; 8];
                            mem.load(addr, &mut lbuf[..eb as usize]);
                            set_elem(&mut out, i, eew, u64::from_le_bytes(lbuf));
                            buf.push(MemOp {
                                addr,
                                bytes: eb,
                                write: false,
                                amo: false,
                            });
                        }
                    }
                    VAddrMode::Indexed(vs2) => {
                        let idx = ctx.v[vs2 as usize];
                        for i in 0..vl as usize {
                            if masked && !mask_bit(&ctx.v[0], i) {
                                continue;
                            }
                            let addr = base.wrapping_add(get_elem(&idx, i, eew));
                            let mut lbuf = [0u8; 8];
                            mem.load(addr, &mut lbuf[..eb as usize]);
                            set_elem(&mut out, i, eew, u64::from_le_bytes(lbuf));
                            buf.push(MemOp {
                                addr,
                                bytes: eb,
                                write: false,
                                amo: false,
                            });
                        }
                    }
                }
                ctx.v[vd] = out;
                ctx.pc += 1;
            });
            Some(EffectClass::VMem)
        }
        Instr::VStore {
            eew,
            vs3,
            rs1,
            mode,
            masked,
        } => {
            let (eew, vs3, rs1, mode, masked) =
                (*eew, *vs3 as usize, *rs1 as usize, *mode, *masked);
            let eb = eew.bytes();
            lanes_do!(ctx => {
                let base = ctx.x[rs1];
                let vl = effective_vl(ctx, eew);
                let src = ctx.v[vs3];
                match mode {
                    VAddrMode::Unit if !masked => {
                        let total = vl * eb;
                        mem.store(base, &src[..total as usize]);
                        buf.push(MemOp {
                            addr: base,
                            bytes: total,
                            write: true,
                            amo: false,
                        });
                    }
                    VAddrMode::Unit => {
                        for i in 0..vl as usize {
                            if !mask_bit(&ctx.v[0], i) {
                                continue;
                            }
                            let addr = base.wrapping_add(i as u64 * eb as u64);
                            let val = get_elem(&src, i, eew).to_le_bytes();
                            mem.store(addr, &val[..eb as usize]);
                            buf.push(MemOp {
                                addr,
                                bytes: eb,
                                write: true,
                                amo: false,
                            });
                        }
                    }
                    VAddrMode::Strided(rs2) => {
                        let stride = ctx.x[rs2 as usize];
                        for i in 0..vl as usize {
                            if masked && !mask_bit(&ctx.v[0], i) {
                                continue;
                            }
                            let addr = base.wrapping_add(stride.wrapping_mul(i as u64));
                            let val = get_elem(&src, i, eew).to_le_bytes();
                            mem.store(addr, &val[..eb as usize]);
                            buf.push(MemOp {
                                addr,
                                bytes: eb,
                                write: true,
                                amo: false,
                            });
                        }
                    }
                    VAddrMode::Indexed(vs2) => {
                        let idx = ctx.v[vs2 as usize];
                        for i in 0..vl as usize {
                            if masked && !mask_bit(&ctx.v[0], i) {
                                continue;
                            }
                            let addr = base.wrapping_add(get_elem(&idx, i, eew));
                            let val = get_elem(&src, i, eew).to_le_bytes();
                            mem.store(addr, &val[..eb as usize]);
                            buf.push(MemOp {
                                addr,
                                bytes: eb,
                                write: true,
                                amo: false,
                            });
                        }
                    }
                }
                ctx.pc += 1;
            });
            Some(EffectClass::VMem)
        }
        Instr::VIntOp {
            op,
            vd,
            vs2,
            operand,
            masked,
        } => {
            let (op, vd, vs2, operand, masked) =
                (*op, *vd as usize, *vs2 as usize, *operand, *masked);
            lanes_do!(ctx => {
                let vl = ctx.vl as usize;
                let sew = ctx.sew;
                let b = ctx.v[vs2];
                let mut out = ctx.v[vd];
                for i in 0..vl {
                    if masked && !mask_bit(&ctx.v[0], i) {
                        continue;
                    }
                    let rhs = v_operand_int(ctx, &operand, i, sew);
                    let lhs = get_elem(&b, i, sew);
                    let val = match op {
                        VIntOp::Add => lhs.wrapping_add(rhs),
                        VIntOp::Sub => lhs.wrapping_sub(rhs),
                        VIntOp::Mul => lhs.wrapping_mul(rhs),
                        VIntOp::And => lhs & rhs,
                        VIntOp::Or => lhs | rhs,
                        VIntOp::Xor => lhs ^ rhs,
                        VIntOp::Sll => lhs << (rhs & 63),
                        VIntOp::Srl => lhs >> (rhs & 63),
                        VIntOp::Min => {
                            (get_elem_signed(&b, i, sew)).min(sign_at(rhs, sew)) as u64
                        }
                        VIntOp::Max => {
                            (get_elem_signed(&b, i, sew)).max(sign_at(rhs, sew)) as u64
                        }
                    };
                    set_elem(&mut out, i, sew, val);
                }
                ctx.v[vd] = out;
                ctx.pc += 1;
            });
            Some(EffectClass::VAlu)
        }
        Instr::VFpOp {
            op,
            vd,
            vs2,
            operand,
            masked,
        } => {
            let (op, vd, vs2, operand, masked) =
                (*op, *vd as usize, *vs2 as usize, *operand, *masked);
            lanes_do!(ctx => {
                let vl = ctx.vl as usize;
                let sew = ctx.sew;
                let b = ctx.v[vs2];
                let mut out = ctx.v[vd];
                for i in 0..vl {
                    if masked && !mask_bit(&ctx.v[0], i) {
                        continue;
                    }
                    let rhs = v_operand_float(ctx, &operand, i, sew);
                    let lhs = get_felem(&b, i, sew);
                    let val = match op {
                        VFpOp::Add => lhs + rhs,
                        VFpOp::Sub => lhs - rhs,
                        VFpOp::Mul => lhs * rhs,
                        VFpOp::Div => lhs / rhs,
                        VFpOp::Macc => get_felem(&out, i, sew) + lhs * rhs,
                        VFpOp::Min => lhs.min(rhs),
                        VFpOp::Max => lhs.max(rhs),
                        VFpOp::Exp => lhs.exp(),
                    };
                    set_felem(&mut out, i, sew, val);
                }
                ctx.v[vd] = out;
                ctx.pc += 1;
            });
            Some(match op {
                VFpOp::Div | VFpOp::Exp => EffectClass::VSfu,
                _ => EffectClass::VFpu,
            })
        }
        Instr::VAmo {
            op,
            eew,
            vd,
            rs1,
            vs2,
            masked,
        } => {
            let (op, eew, vd, rs1, vs2, masked) = (
                *op,
                *eew,
                *vd as usize,
                *rs1 as usize,
                *vs2 as usize,
                *masked,
            );
            let eb = eew.bytes();
            let width = if eb == 4 { Width::W } else { Width::D };
            lanes_do!(ctx => {
                let base = ctx.x[rs1];
                let vl = effective_vl(ctx, eew);
                let idx = ctx.v[vs2];
                let src = ctx.v[vd];
                let mut out = src;
                for i in 0..vl as usize {
                    if masked && !mask_bit(&ctx.v[0], i) {
                        continue;
                    }
                    let addr = base.wrapping_add(get_elem(&idx, i, eew));
                    let old = mem.amo(op, width, addr, get_elem(&src, i, eew));
                    set_elem(&mut out, i, eew, old);
                    buf.push(MemOp {
                        addr,
                        bytes: eb,
                        write: true,
                        amo: true,
                    });
                }
                ctx.v[vd] = out;
                ctx.pc += 1;
            });
            Some(EffectClass::VMem)
        }
        // Cold compute-only opcodes (scalar FP, reductions, moves, ...):
        // delegate to the reference `step`. None of these carry memory
        // payloads, so the delegation stays allocation-free too.
        _ => {
            lanes_do!(ctx => {
                match step(ctx, prog, mem) {
                    Ok(effect) => {
                        match &effect {
                            Effect::Mem(op) => buf.push(*op),
                            Effect::VMem(ops) => {
                                for op in ops {
                                    buf.push(*op);
                                }
                            }
                            _ => {}
                        }
                        if first.is_none() {
                            first = Some(effect.class());
                        }
                    }
                    Err(_) => ctx.done = true,
                }
            });
            None
        }
    };

    if lanes > 0 && first.is_none() {
        first = static_class;
    }
    GroupStep {
        effect: first,
        lanes,
    }
}

/// vl for an explicit element width: scale the configured vl so the same
/// number of *bytes* is covered (simplified LMUL=1 behaviour adequate for
/// the kernels here, which set vl via vsetvli before each width change).
fn effective_vl(ctx: &ThreadCtx, eew: Sew) -> u32 {
    if eew == ctx.sew {
        ctx.vl
    } else {
        (ctx.vl * ctx.sew.bytes()) / eew.bytes()
    }
}

fn sign_at(raw: u64, sew: Sew) -> i64 {
    match sew {
        Sew::E8 => raw as u8 as i8 as i64,
        Sew::E16 => raw as u16 as i16 as i64,
        Sew::E32 => raw as u32 as i32 as i64,
        Sew::E64 => raw as i64,
    }
}

fn v_operand_int(ctx: &ThreadCtx, operand: &VOperand, i: usize, sew: Sew) -> u64 {
    match operand {
        VOperand::Vector(vs) => get_elem(&ctx.v[*vs as usize], i, sew),
        VOperand::Scalar(rs) => ctx.x[*rs as usize],
        VOperand::Imm(v) => *v as u64,
        VOperand::Float(fs) => ctx.f[*fs as usize],
    }
}

fn v_operand_float(ctx: &ThreadCtx, operand: &VOperand, i: usize, sew: Sew) -> f64 {
    match operand {
        VOperand::Vector(vs) => get_felem(&ctx.v[*vs as usize], i, sew),
        VOperand::Float(fs) => match sew {
            Sew::E32 => f32::from_bits(ctx.f[*fs as usize] as u32) as f64,
            _ => f64::from_bits(ctx.f[*fs as usize]),
        },
        VOperand::Scalar(rs) => ctx.x[*rs as usize] as f64,
        VOperand::Imm(v) => *v as f64,
    }
}

fn int_op(op: IntOp, a: u64, b: u64) -> u64 {
    match op {
        IntOp::Add => a.wrapping_add(b),
        IntOp::Sub => a.wrapping_sub(b),
        IntOp::And => a & b,
        IntOp::Or => a | b,
        IntOp::Xor => a ^ b,
        IntOp::Sll => a << (b & 63),
        IntOp::Srl => a >> (b & 63),
        IntOp::Sra => ((a as i64) >> (b & 63)) as u64,
        IntOp::Slt => ((a as i64) < (b as i64)) as u64,
        IntOp::Sltu => (a < b) as u64,
        IntOp::Mul => a.wrapping_mul(b),
        IntOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        IntOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                ((a as i64).wrapping_div(b as i64)) as u64
            }
        }
        IntOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        IntOp::Rem => {
            if b == 0 {
                a
            } else {
                ((a as i64).wrapping_rem(b as i64)) as u64
            }
        }
        IntOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(
        src: &str,
        setup: impl FnOnce(&mut ThreadCtx, &mut MainMemory),
    ) -> (ThreadCtx, MainMemory) {
        let prog = assemble(src).expect("assembles");
        let mut mem = MainMemory::new();
        let mut ctx = ThreadCtx::new();
        setup(&mut ctx, &mut mem);
        let mut iface = MainMemoryIface::new(&mut mem);
        let mut steps = 0;
        while !ctx.done {
            step(&mut ctx, &prog, &mut iface).expect("exec ok");
            steps += 1;
            assert!(steps < 1_000_000, "runaway program");
        }
        (ctx, mem)
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let (ctx, _) = run(
            "li x3, 10
             li x4, 0
             loop: add x4, x4, x3
             addi x3, x3, -1
             bnez x3, loop
             halt",
            |_, _| {},
        );
        assert_eq!(ctx.x[4], 55);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (ctx, _) = run("li x0, 99\nadd x3, x0, x0\nhalt", |_, _| {});
        assert_eq!(ctx.x[0], 0);
        assert_eq!(ctx.x[3], 0);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let (ctx, _) = run(
            "li x3, 0x1000
             lb  x4, (x3)
             lbu x5, (x3)
             lw  x6, 4(x3)
             lwu x7, 4(x3)
             halt",
            |_, mem| {
                mem.write_u8(0x1000, 0xFF);
                mem.write_u32(0x1004, 0x8000_0001);
            },
        );
        assert_eq!(ctx.x[4], u64::MAX); // -1 sign-extended
        assert_eq!(ctx.x[5], 0xFF);
        assert_eq!(ctx.x[6], 0xFFFF_FFFF_8000_0001);
        assert_eq!(ctx.x[7], 0x8000_0001);
    }

    #[test]
    fn store_widths() {
        let (_, mem) = run(
            "li x3, 0x2000
             li x4, 0x1122334455667788
             sb x4, (x3)
             sh x4, 8(x3)
             sw x4, 16(x3)
             sd x4, 24(x3)
             halt",
            |_, _| {},
        );
        assert_eq!(mem.read_u8(0x2000), 0x88);
        assert_eq!(mem.read_u16(0x2008), 0x7788);
        assert_eq!(mem.read_u32(0x2010), 0x5566_7788);
        assert_eq!(mem.read_u64(0x2018), 0x1122_3344_5566_7788);
    }

    #[test]
    fn amoadd_returns_old_and_updates() {
        let (ctx, mem) = run(
            "li x3, 0x3000
             li x4, 5
             amoadd.d x5, x4, (x3)
             halt",
            |_, mem| mem.write_u64(0x3000, 100),
        );
        assert_eq!(ctx.x[5], 100);
        assert_eq!(mem.read_u64(0x3000), 105);
    }

    #[test]
    fn amomin_w_sign_extends_old() {
        let (ctx, mem) = run(
            "li x3, 0x3000
             li x4, -7
             amomin.w x5, x4, (x3)
             halt",
            |_, mem| mem.write_u32(0x3000, (-3i32) as u32),
        );
        assert_eq!(ctx.x[5] as i64, -3);
        assert_eq!(mem.read_u32(0x3000) as i32, -7);
    }

    #[test]
    fn float_arith_and_compare() {
        let (ctx, _) = run(
            "li x3, 0x4000
             flw fa0, (x3)
             flw fa1, 4(x3)
             fadd.s ft0, fa0, fa1
             fmul.s ft1, fa0, fa1
             flt.s x5, fa0, fa1
             fsw ft0, 8(x3)
             halt",
            |_, mem| {
                mem.write_f32(0x4000, 1.5);
                mem.write_f32(0x4004, 2.5);
            },
        );
        assert_eq!(ctx.x[5], 1);
        assert_eq!(f32::from_bits(ctx.f[0] as u32), 4.0); // ft0 = f0
        assert_eq!(f32::from_bits(ctx.f[1] as u32), 3.75); // ft1 = f1
    }

    #[test]
    fn fexp_matches_std() {
        let (ctx, _) = run(
            "li x3, 0x4000
             flw fa0, (x3)
             fexp.s ft0, fa0
             halt",
            |_, mem| mem.write_f32(0x4000, 1.0),
        );
        let got = f32::from_bits(ctx.f[0] as u32);
        assert!((got - std::f32::consts::E).abs() < 1e-6);
    }

    #[test]
    fn fcvt_round_trip() {
        let (ctx, _) = run(
            "li x3, 42
             fcvt.d.l fa0, x3
             fcvt.l.d x4, fa0
             fcvt.s.d fa1, fa0
             fmv.x.w x5, fa1
             halt",
            |_, _| {},
        );
        assert_eq!(ctx.x[4], 42);
        assert_eq!(f32::from_bits(ctx.x[5] as u32), 42.0);
    }

    #[test]
    fn vector_add_unit_stride() {
        let (_, mem) = run(
            "vsetvli x0, x0, e64, m1
             li x7, 0xC000
             vle64.v v1, (x1)
             li x3, 0xB000
             vle64.v v2, (x3)
             vadd.vv v1, v1, v2
             vse64.v v1, (x7)
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for i in 0..4u64 {
                    mem.write_u64(0xA000 + i * 8, 10 + i);
                    mem.write_u64(0xB000 + i * 8, 100 * i);
                }
            },
        );
        for i in 0..4u64 {
            assert_eq!(mem.read_u64(0xC000 + i * 8), 10 + i + 100 * i);
        }
    }

    #[test]
    fn fig8_reduction_body_works() {
        // Kernel body of Fig. 8: vector sum of 4 doubles accumulated into a
        // scratchpad-like location with AMOADD.
        let (_, mem) = run(
            "vsetvli x0, x0, e64, m1
             vle64.v v2, (x1)
             vmv.v.i v1, 0
             vredsum.vs v3, v2, v1
             vmv.x.s x4, v3
             li x3, 0x10000000
             amoadd.d x4, x4, (x3)
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for i in 0..4u64 {
                    mem.write_u64(0xA000 + i * 8, i + 1); // 1+2+3+4 = 10
                }
                mem.write_u64(0x1000_0000, 32);
            },
        );
        assert_eq!(mem.read_u64(0x1000_0000), 42);
    }

    #[test]
    fn gather_with_indices() {
        let (ctx, _) = run(
            "vsetvli x0, x0, e64, m1
             vle64.v v2, (x1)      // load byte offsets
             li x3, 0xB000
             vluxei64.v v3, (x3), v2
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                // offsets pick elements 3, 0, 2, 1 (byte offsets).
                for (i, off) in [24u64, 0, 16, 8].iter().enumerate() {
                    mem.write_u64(0xA000 + i as u64 * 8, *off);
                }
                for i in 0..4u64 {
                    mem.write_u64(0xB000 + i * 8, 1000 + i);
                }
            },
        );
        let v3 = ctx.v[3];
        let got: Vec<u64> = (0..4).map(|i| get_elem(&v3, i, Sew::E64)).collect();
        assert_eq!(got, vec![1003, 1000, 1002, 1001]);
    }

    #[test]
    fn masked_store_skips_inactive() {
        let (_, mem) = run(
            "vsetvli x0, x0, e32, m1
             vle32.v v2, (x1)
             li x4, 5
             vmslt.vx v0, v2, x4   // mask: elements < 5
             li x3, 0xB000
             vse32.v v2, (x3), v0.t
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for i in 0..8u32 {
                    mem.write_u32(0xA000 + i as u64 * 4, i);
                    mem.write_u32(0xB000 + i as u64 * 4, 0xFFFF_FFFF);
                }
            },
        );
        for i in 0..8u32 {
            let got = mem.read_u32(0xB000 + i as u64 * 4);
            if i < 5 {
                assert_eq!(got, i);
            } else {
                assert_eq!(got, 0xFFFF_FFFF, "element {i} should be untouched");
            }
        }
    }

    #[test]
    fn vector_float_macc_and_reduction() {
        let (ctx, _) = run(
            "vsetvli x0, x0, e32, m1
             vle32.v v2, (x1)
             li x3, 0xB000
             vle32.v v3, (x3)
             vmv.v.i v4, 0
             vfmacc.vv v4, v2, v3   // v4 += v2*v3
             vmv.v.i v5, 0
             vfredusum.vs v6, v4, v5
             vfmv.f.s fa0, v6
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for i in 0..8u64 {
                    mem.write_f32(0xA000 + i * 4, i as f32);
                    mem.write_f32(0xB000 + i * 4, 2.0);
                }
            },
        );
        // dot([0..8), 2.0) = 2*28 = 56
        assert_eq!(f32::from_bits(ctx.f[10] as u32), 56.0);
    }

    #[test]
    fn vamo_histogram_pattern() {
        let (_, mem) = run(
            "vsetvli x0, x0, e32, m1
             vle32.v v2, (x1)      // bin indices
             vsll.vi v2, v2, 2     // byte offsets = idx * 4
             vmv.v.i v3, 1
             li x3, 0xB000
             vamoaddei32.v v3, (x3), v2
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for (i, bin) in [3u32, 1, 3, 0, 3, 1, 2, 3].iter().enumerate() {
                    mem.write_u32(0xA000 + i as u64 * 4, *bin);
                }
            },
        );
        let bins: Vec<u32> = (0..4).map(|i| mem.read_u32(0xB000 + i * 4)).collect();
        assert_eq!(bins, vec![1, 2, 1, 4]);
    }

    #[test]
    fn strided_load() {
        let (ctx, _) = run(
            "vsetvli x0, x0, e32, m1
             li x3, 16
             vlse32.v v2, (x1), x3
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for i in 0..8u64 {
                    mem.write_u32(0xA000 + i * 16, i as u32 * 11);
                }
            },
        );
        for i in 0..8usize {
            assert_eq!(get_elem(&ctx.v[2], i, Sew::E32), i as u64 * 11);
        }
    }

    #[test]
    fn vid_and_slidedown() {
        let (ctx, _) = run(
            "vsetvli x0, x0, e32, m1
             vid.v v2
             vslidedown.vi v3, v2, 3
             halt",
            |_, _| {},
        );
        assert_eq!(get_elem(&ctx.v[3], 0, Sew::E32), 3);
        assert_eq!(get_elem(&ctx.v[3], 4, Sew::E32), 7);
        assert_eq!(get_elem(&ctx.v[3], 5, Sew::E32), 0); // slid past vl
    }

    #[test]
    fn spawned_context_carries_address_and_offset() {
        let ctx = ThreadCtx::spawned(0xA000, 0x40);
        assert_eq!(ctx.x[1], 0xA000);
        assert_eq!(ctx.x[2], 0x40);
        assert!(!ctx.done);
    }

    #[test]
    fn pc_out_of_range_errors() {
        let prog = assemble("nop").unwrap();
        let mut mem = MainMemory::new();
        let mut iface = MainMemoryIface::new(&mut mem);
        let mut ctx = ThreadCtx::new();
        step(&mut ctx, &prog, &mut iface).unwrap();
        let e = step(&mut ctx, &prog, &mut iface).unwrap_err();
        assert!(matches!(e, ExecError::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn top_level_ret_halts() {
        let (ctx, _) = run("ret", |_, _| {});
        assert!(ctx.done);
    }

    #[test]
    fn jal_and_ret_round_trip() {
        let (ctx, _) = run(
            "jal ra, func
             li x5, 1
             halt
             func: li x6, 2
             ret",
            |_, _| {},
        );
        assert_eq!(ctx.x[5], 1);
        assert_eq!(ctx.x[6], 2);
    }

    #[test]
    fn division_by_zero_riscv_semantics() {
        let (ctx, _) = run(
            "li x3, 7
             li x4, 0
             div x5, x3, x4
             rem x6, x3, x4
             halt",
            |_, _| {},
        );
        assert_eq!(ctx.x[5], u64::MAX);
        assert_eq!(ctx.x[6], 7);
    }

    #[test]
    fn effects_classify_units() {
        let prog = assemble("li x3, 1\nmul x4, x3, x3\nfexp.s ft0, ft0\nhalt").unwrap();
        let mut mem = MainMemory::new();
        let mut iface = MainMemoryIface::new(&mut mem);
        let mut ctx = ThreadCtx::new();
        assert_eq!(step(&mut ctx, &prog, &mut iface).unwrap(), Effect::Alu);
        assert_eq!(step(&mut ctx, &prog, &mut iface).unwrap(), Effect::Mul);
        assert_eq!(step(&mut ctx, &prog, &mut iface).unwrap(), Effect::Sfu);
        assert_eq!(step(&mut ctx, &prog, &mut iface).unwrap(), Effect::Halted);
    }
}
