//! Assembled NDP kernel programs.

use std::collections::HashMap;

use crate::exec::EffectClass;
use crate::instr::{FpOp, Instr, IntOp, VFpOp};

/// ISA-level functional-unit class of an instruction, decoded once at
/// assembly time. Configuration-independent: the engine maps the scalar
/// classes onto vector units when a configuration has no scalar units
/// (GPU mode, §III-D A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Scalar integer ALU.
    SAlu,
    /// Scalar special-function unit (div/rem, fdiv, fsqrt, fexp).
    SSfu,
    /// Scalar load/store unit.
    SLsu,
    /// Vector ALU (all vector compute, moves, and vsetvli).
    VAlu,
    /// Vector special-function unit (vfdiv, vfexp).
    VSfu,
    /// Vector load/store unit.
    VLsu,
}

/// Pre-decoded issue metadata for one instruction: the functional unit it
/// occupies and its latency class (the [`EffectClass`] the instruction
/// statically produces — `jalr` reports [`EffectClass::Branch`] here and
/// resolves its dynamic `Halted` case at execution).
///
/// [`Program::new`] derives one entry per instruction, so the table is
/// rebuilt identically whenever a program is (re)assembled and never needs
/// to be serialized or hand-maintained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstrClass {
    /// Which functional unit the instruction occupies.
    pub fu: FuClass,
    /// Latency class the timing layer charges for it.
    pub effect: EffectClass,
}

/// Statically classifies one instruction ([`Program::new`] caches the
/// result per pc as [`Program::classes`]).
pub fn classify(instr: &Instr) -> InstrClass {
    let effect = match instr {
        Instr::Li { .. }
        | Instr::Lui { .. }
        | Instr::OpImm { .. }
        | Instr::Fence
        | Instr::FMvToInt { .. }
        | Instr::FMvFromInt { .. } => EffectClass::Alu,
        Instr::Op { op, .. } => {
            if op.is_muldiv() {
                if matches!(op, IntOp::Mul | IntOp::Mulh) {
                    EffectClass::Mul
                } else {
                    EffectClass::Div
                }
            } else {
                EffectClass::Alu
            }
        }
        Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::Amo { .. }
        | Instr::FLoad { .. }
        | Instr::FStore { .. } => EffectClass::Mem,
        Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => EffectClass::Branch,
        Instr::Halt => EffectClass::Halted,
        Instr::FOp { op, .. } => match op {
            FpOp::Div | FpOp::Sqrt | FpOp::Exp => EffectClass::Sfu,
            _ => EffectClass::FpAlu,
        },
        Instr::FMadd { .. }
        | Instr::FCmp { .. }
        | Instr::FCvtFromInt { .. }
        | Instr::FCvtToInt { .. }
        | Instr::FCvtPrec { .. } => EffectClass::FpAlu,
        Instr::Vsetvli { .. }
        | Instr::VMv { .. }
        | Instr::VMvToScalar { .. }
        | Instr::VMvFromScalar { .. }
        | Instr::VFMvToScalar { .. } => EffectClass::VCtl,
        Instr::VLoad { .. } | Instr::VStore { .. } | Instr::VAmo { .. } => EffectClass::VMem,
        Instr::VIntOp { .. }
        | Instr::VCmp { .. }
        | Instr::Vid { .. }
        | Instr::VMerge { .. }
        | Instr::VSlidedown { .. } => EffectClass::VAlu,
        Instr::VFpOp { op, .. } => match op {
            VFpOp::Div | VFpOp::Exp => EffectClass::VSfu,
            _ => EffectClass::VFpu,
        },
        Instr::VRed { .. } => EffectClass::VFpu,
    };
    let fu = match instr {
        Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::Amo { .. }
        | Instr::FLoad { .. }
        | Instr::FStore { .. } => FuClass::SLsu,
        Instr::VLoad { .. } | Instr::VStore { .. } | Instr::VAmo { .. } => FuClass::VLsu,
        Instr::Op {
            op: IntOp::Div | IntOp::Divu | IntOp::Rem | IntOp::Remu,
            ..
        } => FuClass::SSfu,
        Instr::FOp {
            op: FpOp::Div | FpOp::Sqrt | FpOp::Exp,
            ..
        } => FuClass::SSfu,
        Instr::VFpOp {
            op: VFpOp::Div | VFpOp::Exp,
            ..
        } => FuClass::VSfu,
        i if i.is_vector() => FuClass::VAlu,
        _ => FuClass::SAlu,
    };
    InstrClass { fu, effect }
}

/// An assembled program: a flat instruction vector with resolved branch
/// targets, plus the label map and register-usage summary used at kernel
/// registration time (Table II's `numIntRegs`/`numFloatRegs`/`numVectorRegs`
/// arguments).
///
/// `classes` is a derived pre-decoded side table (one [`InstrClass`] per
/// instruction); it is a pure function of `instrs`, so the derived
/// `PartialEq` stays lawful and round-tripping through the disassembler
/// reproduces it bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    classes: Vec<InstrClass>,
}

/// Architectural register usage of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegUsage {
    /// Number of integer registers used (highest index + 1, including x0).
    pub int_regs: u8,
    /// Number of float registers used.
    pub float_regs: u8,
    /// Number of vector registers used.
    pub vector_regs: u8,
}

impl Program {
    /// Creates a program from parts (used by the assembler), pre-decoding
    /// the per-instruction [`InstrClass`] table.
    pub fn new(instrs: Vec<Instr>, labels: HashMap<String, usize>) -> Self {
        let classes = instrs.iter().map(classify).collect();
        Self {
            instrs,
            labels,
            classes,
        }
    }

    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Instruction at `pc`, if in range.
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// Pre-decoded issue metadata for the instruction at `pc`, if in
    /// range. An array lookup — the engine's dispatch scan uses this
    /// instead of re-matching the instruction enum every cycle.
    pub fn class_at(&self, pc: usize) -> Option<InstrClass> {
        self.classes.get(pc).copied()
    }

    /// The pre-decoded class table, one entry per instruction.
    pub fn classes(&self) -> &[InstrClass] {
        &self.classes
    }

    /// Number of instructions (the paper's static instruction count,
    /// §III-D A1).
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction index of a label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// The full label map (name → instruction index).
    ///
    /// Used by the disassembler to reconstruct label definitions; indices may
    /// equal [`Self::len`] for labels pointing past the last instruction.
    pub fn labels(&self) -> &HashMap<String, usize> {
        &self.labels
    }

    /// Scans the program for its architectural register footprint.
    ///
    /// Memory-bound kernels use few registers (§III-D); the NDP controller
    /// uses these counts to pack many µthread contexts into the physical
    /// register file.
    pub fn reg_usage(&self) -> RegUsage {
        let mut x = 0u8;
        let mut f = 0u8;
        let mut v = 0u8;
        let mut tx = |r: u8| x = x.max(r + 1);
        let mut tf = |r: u8| f = f.max(r + 1);
        let mut tv = |r: u8| v = v.max(r + 1);
        for i in &self.instrs {
            match *i {
                Instr::Li { rd, .. } | Instr::Lui { rd, .. } => tx(rd),
                Instr::Op { rd, rs1, rs2, .. } => {
                    tx(rd);
                    tx(rs1);
                    tx(rs2);
                }
                Instr::OpImm { rd, rs1, .. } => {
                    tx(rd);
                    tx(rs1);
                }
                Instr::Load { rd, rs1, .. } => {
                    tx(rd);
                    tx(rs1);
                }
                Instr::Store { rs2, rs1, .. } => {
                    tx(rs2);
                    tx(rs1);
                }
                Instr::Branch { rs1, rs2, .. } => {
                    tx(rs1);
                    tx(rs2);
                }
                Instr::Jal { rd, .. } => tx(rd),
                Instr::Jalr { rd, rs1, .. } => {
                    tx(rd);
                    tx(rs1);
                }
                Instr::Amo { rd, rs2, rs1, .. } => {
                    tx(rd);
                    tx(rs2);
                    tx(rs1);
                }
                Instr::Fence | Instr::Halt => {}
                Instr::FLoad { rd, rs1, .. } => {
                    tf(rd);
                    tx(rs1);
                }
                Instr::FStore { rs2, rs1, .. } => {
                    tf(rs2);
                    tx(rs1);
                }
                Instr::FOp { rd, rs1, rs2, .. } => {
                    tf(rd);
                    tf(rs1);
                    tf(rs2);
                }
                Instr::FMadd {
                    rd, rs1, rs2, rs3, ..
                } => {
                    tf(rd);
                    tf(rs1);
                    tf(rs2);
                    tf(rs3);
                }
                Instr::FCmp { rd, rs1, rs2, .. } => {
                    tx(rd);
                    tf(rs1);
                    tf(rs2);
                }
                Instr::FCvtFromInt { rd, rs1, .. } => {
                    tf(rd);
                    tx(rs1);
                }
                Instr::FCvtToInt { rd, rs1, .. } => {
                    tx(rd);
                    tf(rs1);
                }
                Instr::FMvToInt { rd, rs1, .. } => {
                    tx(rd);
                    tf(rs1);
                }
                Instr::FMvFromInt { rd, rs1, .. } => {
                    tf(rd);
                    tx(rs1);
                }
                Instr::FCvtPrec { rd, rs1, .. } => {
                    tf(rd);
                    tf(rs1);
                }
                Instr::Vsetvli { rd, rs1, .. } => {
                    tx(rd);
                    tx(rs1);
                }
                Instr::VLoad { vd, rs1, mode, .. } => {
                    tv(vd);
                    tx(rs1);
                    match mode {
                        crate::instr::VAddrMode::Strided(r) => tx(r),
                        crate::instr::VAddrMode::Indexed(r) => tv(r),
                        crate::instr::VAddrMode::Unit => {}
                    }
                }
                Instr::VStore { vs3, rs1, mode, .. } => {
                    tv(vs3);
                    tx(rs1);
                    match mode {
                        crate::instr::VAddrMode::Strided(r) => tx(r),
                        crate::instr::VAddrMode::Indexed(r) => tv(r),
                        crate::instr::VAddrMode::Unit => {}
                    }
                }
                Instr::VIntOp {
                    vd, vs2, operand, ..
                }
                | Instr::VFpOp {
                    vd, vs2, operand, ..
                }
                | Instr::VCmp {
                    vd, vs2, operand, ..
                }
                | Instr::VMerge { vd, vs2, operand }
                | Instr::VSlidedown { vd, vs2, operand } => {
                    tv(vd);
                    tv(vs2);
                    match operand {
                        crate::instr::VOperand::Vector(r) => tv(r),
                        crate::instr::VOperand::Scalar(r) => tx(r),
                        crate::instr::VOperand::Float(r) => tf(r),
                        crate::instr::VOperand::Imm(_) => {}
                    }
                }
                Instr::VRed { vd, vs2, vs1, .. } => {
                    tv(vd);
                    tv(vs2);
                    tv(vs1);
                }
                Instr::VMv { vd, operand } => {
                    tv(vd);
                    match operand {
                        crate::instr::VOperand::Vector(r) => tv(r),
                        crate::instr::VOperand::Scalar(r) => tx(r),
                        crate::instr::VOperand::Float(r) => tf(r),
                        crate::instr::VOperand::Imm(_) => {}
                    }
                }
                Instr::VMvToScalar { rd, vs2 } => {
                    tx(rd);
                    tv(vs2);
                }
                Instr::VMvFromScalar { vd, rs1 } => {
                    tv(vd);
                    tx(rs1);
                }
                Instr::VFMvToScalar { rd, vs2 } => {
                    tf(rd);
                    tv(vs2);
                }
                Instr::Vid { vd, .. } => tv(vd),
                Instr::VAmo { vd, rs1, vs2, .. } => {
                    tv(vd);
                    tx(rs1);
                    tv(vs2);
                }
            }
        }
        RegUsage {
            int_regs: x,
            float_regs: f,
            vector_regs: v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{IntOp, Width};

    #[test]
    fn reg_usage_tracks_highest_index() {
        let p = Program::new(
            vec![
                Instr::Li { rd: 4, imm: 1 },
                Instr::Op {
                    op: IntOp::Add,
                    rd: 2,
                    rs1: 4,
                    rs2: 1,
                },
                Instr::Load {
                    width: Width::D,
                    signed: true,
                    rd: 3,
                    rs1: 2,
                    offset: 0,
                },
            ],
            HashMap::new(),
        );
        let u = p.reg_usage();
        assert_eq!(u.int_regs, 5);
        assert_eq!(u.float_regs, 0);
        assert_eq!(u.vector_regs, 0);
    }

    #[test]
    fn fetch_out_of_range_is_none() {
        let p = Program::new(vec![Instr::Halt], HashMap::new());
        assert!(p.fetch(0).is_some());
        assert!(p.fetch(1).is_none());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn class_table_is_derived_per_instruction() {
        use crate::exec::EffectClass;
        use crate::instr::{FpOp, Precision, VFpOp, VOperand};
        let instrs = vec![
            Instr::Li { rd: 1, imm: 0 },
            Instr::Op {
                op: IntOp::Div,
                rd: 1,
                rs1: 1,
                rs2: 1,
            },
            Instr::Op {
                op: IntOp::Mul,
                rd: 1,
                rs1: 1,
                rs2: 1,
            },
            Instr::Load {
                width: Width::D,
                signed: true,
                rd: 1,
                rs1: 1,
                offset: 0,
            },
            Instr::FOp {
                op: FpOp::Sqrt,
                precision: Precision::D,
                rd: 0,
                rs1: 0,
                rs2: 0,
            },
            Instr::VFpOp {
                op: VFpOp::Div,
                vd: 1,
                vs2: 2,
                operand: VOperand::Vector(3),
                masked: false,
            },
            Instr::VIntOp {
                op: crate::instr::VIntOp::Add,
                vd: 1,
                vs2: 2,
                operand: VOperand::Vector(3),
                masked: false,
            },
            Instr::Halt,
        ];
        let p = Program::new(instrs, HashMap::new());
        assert_eq!(p.classes().len(), p.len());
        let expect = [
            (FuClass::SAlu, EffectClass::Alu),
            (FuClass::SSfu, EffectClass::Div),
            (FuClass::SAlu, EffectClass::Mul),
            (FuClass::SLsu, EffectClass::Mem),
            (FuClass::SSfu, EffectClass::Sfu),
            (FuClass::VSfu, EffectClass::VSfu),
            (FuClass::VAlu, EffectClass::VAlu),
            (FuClass::SAlu, EffectClass::Halted),
        ];
        for (pc, (fu, effect)) in expect.iter().enumerate() {
            let c = p.class_at(pc).unwrap();
            assert_eq!(c.fu, *fu, "pc {pc}");
            assert_eq!(c.effect, *effect, "pc {pc}");
        }
        assert!(p.class_at(p.len()).is_none());
    }
}
