//! Text assembler for NDP kernels.
//!
//! Accepts the assembly dialect the paper's kernels are written in (Fig. 4,
//! Fig. 8): one instruction per line, optional `label:` prefixes, comments
//! with `//`, `#` or `;`, operands separated by commas and/or spaces, memory
//! operands as `offset(reg)`, and vector masks as a trailing `v0.t`.
//!
//! All pseudo-instructions expand 1:1 (`li` is a first-class instruction in
//! this ISA model), so label resolution is a simple two-pass scan.

use std::collections::HashMap;

use crate::instr::{
    AmoOp, BranchCond, FCmpOp, FpOp, Instr, IntOp, Precision, Sew, VAddrMode, VCmpOp, VFpOp,
    VIntOp, VOperand, VRedOp, Width,
};
use crate::program::Program;

/// Assembly error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Parses an integer register name (`x7`, `zero`, `a0`, `t3`, `sp`, ...).
/// Register names are case-insensitive, matching the mnemonic handling.
fn xreg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let lowered = tok.trim().to_ascii_lowercase();
    let t = lowered.as_str();
    if let Some(n) = t.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(i);
            }
        }
    }
    let abi = match t {
        "zero" => 0,
        "ra" => 1,
        "sp" => 2,
        "gp" => 3,
        "tp" => 4,
        "t0" => 5,
        "t1" => 6,
        "t2" => 7,
        "s0" | "fp" => 8,
        "s1" => 9,
        "a0" => 10,
        "a1" => 11,
        "a2" => 12,
        "a3" => 13,
        "a4" => 14,
        "a5" => 15,
        "a6" => 16,
        "a7" => 17,
        "s2" => 18,
        "s3" => 19,
        "s4" => 20,
        "s5" => 21,
        "s6" => 22,
        "s7" => 23,
        "s8" => 24,
        "s9" => 25,
        "s10" => 26,
        "s11" => 27,
        "t3" => 28,
        "t4" => 29,
        "t5" => 30,
        "t6" => 31,
        _ => return err(line, format!("not an integer register: `{t}`")),
    };
    Ok(abi)
}

/// Parses a float register name (`f3`, `ft0`, `fa1`, `fs2`).
fn freg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let lowered = tok.trim().to_ascii_lowercase();
    let t = lowered.as_str();
    if let Some(n) = t.strip_prefix('f') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(i);
            }
        }
    }
    let idx = |s: &str, base: u8, max: u8| -> Option<u8> {
        s.parse::<u8>().ok().filter(|i| *i <= max).map(|i| base + i)
    };
    let r = if let Some(n) = t.strip_prefix("ft") {
        // ft0-7 -> f0-7, ft8-11 -> f28-31
        n.parse::<u8>().ok().and_then(|i| match i {
            0..=7 => Some(i),
            8..=11 => Some(20 + i),
            _ => None,
        })
    } else if let Some(n) = t.strip_prefix("fs") {
        // fs0-1 -> f8-9, fs2-11 -> f18-27
        n.parse::<u8>().ok().and_then(|i| match i {
            0..=1 => Some(8 + i),
            2..=11 => Some(16 + i),
            _ => None,
        })
    } else if let Some(n) = t.strip_prefix("fa") {
        idx(n, 10, 7)
    } else {
        None
    };
    match r {
        Some(i) => Ok(i),
        None => err(line, format!("not a float register: `{t}`")),
    }
}

/// Parses a vector register name (`v0`–`v31`).
fn vreg(tok: &str, line: usize) -> Result<u8, AsmError> {
    let lowered = tok.trim().to_ascii_lowercase();
    let t = lowered.as_str();
    if let Some(n) = t.strip_prefix('v') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 32 {
                return Ok(i);
            }
        }
    }
    err(line, format!("not a vector register: `{t}`"))
}

/// Parses an immediate: decimal or 0x-hex, with optional sign.
///
/// The magnitude is parsed as a `u64` so the full two's-complement range
/// round-trips: `-9223372036854775808` (`i64::MIN`) and
/// `0xffffffffffffffff` (= -1) are both accepted.
fn imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(h) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(h, 16)
    } else {
        body.parse::<u64>()
    };
    match v {
        Ok(v) => Ok(if neg {
            (v as i64).wrapping_neg()
        } else {
            v as i64
        }),
        Err(_) => err(line, format!("not an immediate: `{t}`")),
    }
}

/// Parses a memory operand `offset(reg)` or `(reg)`.
fn mem_operand(tok: &str, line: usize) -> Result<(i64, u8), AsmError> {
    let t = tok.trim();
    let Some(open) = t.find('(') else {
        return err(line, format!("expected memory operand `off(reg)`: `{t}`"));
    };
    let Some(close) = t.rfind(')') else {
        return err(line, format!("unclosed memory operand: `{t}`"));
    };
    let off_str = t[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        imm(off_str, line)?
    };
    let reg = xreg(&t[open + 1..close], line)?;
    Ok((off, reg))
}

/// Splits the operand field into tokens, keeping `off(reg)` together.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            ' ' | '\t' if depth == 0 => {
                if !cur.trim().is_empty() {
                    out.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn sew_from_suffix(s: &str, line: usize) -> Result<Sew, AsmError> {
    match s {
        "8" => Ok(Sew::E8),
        "16" => Ok(Sew::E16),
        "32" => Ok(Sew::E32),
        "64" => Ok(Sew::E64),
        _ => err(line, format!("bad element width `{s}`")),
    }
}

/// Strips a trailing `v0.t` mask token; returns (operands, masked).
fn strip_mask(mut ops: Vec<String>) -> (Vec<String>, bool) {
    if ops.last().is_some_and(|s| s.eq_ignore_ascii_case("v0.t")) {
        ops.pop();
        (ops, true)
    } else {
        (ops, false)
    }
}

struct LineParts<'a> {
    label: Option<&'a str>,
    mnemonic: Option<&'a str>,
    operands: &'a str,
}

fn split_line(raw: &str) -> LineParts<'_> {
    let mut s = raw;
    for marker in ["//", "#", ";"] {
        if let Some(pos) = s.find(marker) {
            s = &s[..pos];
        }
    }
    let s = s.trim();
    let (label, rest) = match s.find(':') {
        Some(pos)
            if s[..pos]
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '.') =>
        {
            (Some(s[..pos].trim()), s[pos + 1..].trim())
        }
        _ => (None, s),
    };
    if rest.is_empty() {
        return LineParts {
            label,
            mnemonic: None,
            operands: "",
        };
    }
    let (mnemonic, operands) = match rest.find(|c: char| c.is_whitespace()) {
        Some(pos) => (&rest[..pos], rest[pos..].trim()),
        None => (rest, ""),
    };
    LineParts {
        label,
        mnemonic: Some(mnemonic),
        operands,
    }
}

/// Assembles `source` into a [`Program`].
///
/// # Errors
/// Returns an [`AsmError`] identifying the offending line for unknown
/// mnemonics, malformed operands, or unresolved labels.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Pass 1: label -> instruction index.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut index = 0usize;
    for (ln, raw) in source.lines().enumerate() {
        let parts = split_line(raw);
        if let Some(label) = parts.label {
            if labels.insert(label.to_string(), index).is_some() {
                return err(ln + 1, format!("duplicate label `{label}`"));
            }
        }
        if parts.mnemonic.is_some() {
            index += 1;
        }
    }

    // Pass 2: parse instructions.
    let mut instrs = Vec::with_capacity(index);
    for (ln0, raw) in source.lines().enumerate() {
        let ln = ln0 + 1;
        let parts = split_line(raw);
        let Some(mnemonic) = parts.mnemonic else {
            continue;
        };
        let m = mnemonic.to_ascii_lowercase();
        let ops = split_operands(parts.operands);
        let instr = parse_instr(&m, ops, &labels, ln)?;
        instrs.push(instr);
    }
    Ok(Program::new(instrs, labels))
}

fn lookup_label(
    labels: &HashMap<String, usize>,
    name: &str,
    line: usize,
) -> Result<usize, AsmError> {
    labels.get(name).copied().ok_or_else(|| AsmError {
        line,
        message: format!("unknown label `{name}`"),
    })
}

#[allow(clippy::too_many_lines)]
fn parse_instr(
    m: &str,
    ops: Vec<String>,
    labels: &HashMap<String, usize>,
    ln: usize,
) -> Result<Instr, AsmError> {
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(ln, format!("`{m}` expects {n} operands, got {}", ops.len()))
        }
    };

    // Vector mnemonics (checked first: many share prefixes with scalar ops).
    if m.starts_with('v') {
        return parse_vector(m, ops, ln);
    }

    let int_rr = |op: IntOp, ops: &[String]| -> Result<Instr, AsmError> {
        Ok(Instr::Op {
            op,
            rd: xreg(&ops[0], ln)?,
            rs1: xreg(&ops[1], ln)?,
            rs2: xreg(&ops[2], ln)?,
        })
    };
    let int_ri = |op: IntOp, ops: &[String]| -> Result<Instr, AsmError> {
        Ok(Instr::OpImm {
            op,
            rd: xreg(&ops[0], ln)?,
            rs1: xreg(&ops[1], ln)?,
            imm: imm(&ops[2], ln)?,
        })
    };

    match m {
        "li" => {
            need(2)?;
            Ok(Instr::Li {
                rd: xreg(&ops[0], ln)?,
                imm: imm(&ops[1], ln)?,
            })
        }
        "lui" => {
            need(2)?;
            Ok(Instr::Lui {
                rd: xreg(&ops[0], ln)?,
                imm: imm(&ops[1], ln)?,
            })
        }
        "mv" => {
            need(2)?;
            Ok(Instr::OpImm {
                op: IntOp::Add,
                rd: xreg(&ops[0], ln)?,
                rs1: xreg(&ops[1], ln)?,
                imm: 0,
            })
        }
        "not" => {
            need(2)?;
            Ok(Instr::OpImm {
                op: IntOp::Xor,
                rd: xreg(&ops[0], ln)?,
                rs1: xreg(&ops[1], ln)?,
                imm: -1,
            })
        }
        "neg" => {
            need(2)?;
            Ok(Instr::Op {
                op: IntOp::Sub,
                rd: xreg(&ops[0], ln)?,
                rs1: 0,
                rs2: xreg(&ops[1], ln)?,
            })
        }
        "seqz" => {
            need(2)?;
            Ok(Instr::OpImm {
                op: IntOp::Sltu,
                rd: xreg(&ops[0], ln)?,
                rs1: xreg(&ops[1], ln)?,
                imm: 1,
            })
        }
        "snez" => {
            need(2)?;
            Ok(Instr::Op {
                op: IntOp::Sltu,
                rd: xreg(&ops[0], ln)?,
                rs1: 0,
                rs2: xreg(&ops[1], ln)?,
            })
        }
        "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu" | "mul"
        | "mulh" | "div" | "divu" | "rem" | "remu" => {
            need(3)?;
            let op = match m {
                "add" => IntOp::Add,
                "sub" => IntOp::Sub,
                "and" => IntOp::And,
                "or" => IntOp::Or,
                "xor" => IntOp::Xor,
                "sll" => IntOp::Sll,
                "srl" => IntOp::Srl,
                "sra" => IntOp::Sra,
                "slt" => IntOp::Slt,
                "sltu" => IntOp::Sltu,
                "mul" => IntOp::Mul,
                "mulh" => IntOp::Mulh,
                "div" => IntOp::Div,
                "divu" => IntOp::Divu,
                "rem" => IntOp::Rem,
                _ => IntOp::Remu,
            };
            int_rr(op, &ops)
        }
        "addi" | "andi" | "ori" | "xori" | "slli" | "srli" | "srai" | "slti" | "sltiu" => {
            need(3)?;
            let op = match m {
                "addi" => IntOp::Add,
                "andi" => IntOp::And,
                "ori" => IntOp::Or,
                "xori" => IntOp::Xor,
                "slli" => IntOp::Sll,
                "srli" => IntOp::Srl,
                "srai" => IntOp::Sra,
                "slti" => IntOp::Slt,
                _ => IntOp::Sltu,
            };
            int_ri(op, &ops)
        }
        "lb" | "lh" | "lw" | "ld" | "lbu" | "lhu" | "lwu" | "ldu" => {
            need(2)?;
            let (width, signed) = match m {
                "lb" => (Width::B, true),
                "lh" => (Width::H, true),
                "lw" => (Width::W, true),
                "ld" => (Width::D, true),
                "lbu" => (Width::B, false),
                "lhu" => (Width::H, false),
                "lwu" => (Width::W, false),
                _ => (Width::D, false),
            };
            let (offset, rs1) = mem_operand(&ops[1], ln)?;
            Ok(Instr::Load {
                width,
                signed,
                rd: xreg(&ops[0], ln)?,
                rs1,
                offset,
            })
        }
        "sb" | "sh" | "sw" | "sd" => {
            need(2)?;
            let width = match m {
                "sb" => Width::B,
                "sh" => Width::H,
                "sw" => Width::W,
                _ => Width::D,
            };
            let (offset, rs1) = mem_operand(&ops[1], ln)?;
            Ok(Instr::Store {
                width,
                rs2: xreg(&ops[0], ln)?,
                rs1,
                offset,
            })
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" | "bgt" | "ble" => {
            need(3)?;
            let target = lookup_label(labels, &ops[2], ln)?;
            let (cond, rs1, rs2) = match m {
                "beq" => (BranchCond::Eq, 0, 1),
                "bne" => (BranchCond::Ne, 0, 1),
                "blt" => (BranchCond::Lt, 0, 1),
                "bge" => (BranchCond::Ge, 0, 1),
                "bltu" => (BranchCond::Ltu, 0, 1),
                "bgeu" => (BranchCond::Geu, 0, 1),
                "bgt" => (BranchCond::Lt, 1, 0),
                _ => (BranchCond::Ge, 1, 0), // ble a,b == bge b,a
            };
            Ok(Instr::Branch {
                cond,
                rs1: xreg(&ops[rs1], ln)?,
                rs2: xreg(&ops[rs2], ln)?,
                target,
            })
        }
        "beqz" | "bnez" | "bltz" | "bgez" | "blez" | "bgtz" => {
            need(2)?;
            let target = lookup_label(labels, &ops[1], ln)?;
            let r = xreg(&ops[0], ln)?;
            let (cond, rs1, rs2) = match m {
                "beqz" => (BranchCond::Eq, r, 0),
                "bnez" => (BranchCond::Ne, r, 0),
                "bltz" => (BranchCond::Lt, r, 0),
                "bgez" => (BranchCond::Ge, r, 0),
                "blez" => (BranchCond::Ge, 0, r), // 0 >= r
                _ => (BranchCond::Lt, 0, r),      // 0 < r
            };
            Ok(Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            })
        }
        "j" => {
            need(1)?;
            Ok(Instr::Jal {
                rd: 0,
                target: lookup_label(labels, &ops[0], ln)?,
            })
        }
        "jal" => {
            if ops.len() == 1 {
                Ok(Instr::Jal {
                    rd: 1,
                    target: lookup_label(labels, &ops[0], ln)?,
                })
            } else {
                need(2)?;
                Ok(Instr::Jal {
                    rd: xreg(&ops[0], ln)?,
                    target: lookup_label(labels, &ops[1], ln)?,
                })
            }
        }
        "jalr" => {
            if ops.len() == 1 {
                Ok(Instr::Jalr {
                    rd: 1,
                    rs1: xreg(&ops[0], ln)?,
                    offset: 0,
                })
            } else {
                need(2)?;
                let (offset, rs1) = mem_operand(&ops[1], ln)?;
                Ok(Instr::Jalr {
                    rd: xreg(&ops[0], ln)?,
                    rs1,
                    offset,
                })
            }
        }
        "ret" => {
            need(0)?;
            Ok(Instr::Jalr {
                rd: 0,
                rs1: 1,
                offset: 0,
            })
        }
        "halt" | "exit" => {
            need(0)?;
            Ok(Instr::Halt)
        }
        "nop" => {
            need(0)?;
            Ok(Instr::OpImm {
                op: IntOp::Add,
                rd: 0,
                rs1: 0,
                imm: 0,
            })
        }
        "fence" | "fence.rw.rw" => Ok(Instr::Fence),
        _ if m.starts_with("amo") => {
            need(3)?;
            let rest = &m[3..];
            let (op_str, width_str) = rest.split_once('.').ok_or_else(|| AsmError {
                line: ln,
                message: format!("bad AMO mnemonic `{m}`"),
            })?;
            let op = match op_str {
                "add" => AmoOp::Add,
                "swap" => AmoOp::Swap,
                "min" => AmoOp::Min,
                "max" => AmoOp::Max,
                "and" => AmoOp::And,
                "or" => AmoOp::Or,
                "xor" => AmoOp::Xor,
                _ => return err(ln, format!("unsupported AMO `{m}`")),
            };
            let width = match width_str {
                "w" => Width::W,
                "d" => Width::D,
                _ => return err(ln, format!("AMO width must be .w or .d: `{m}`")),
            };
            let (off, rs1) = mem_operand(&ops[2], ln)?;
            if off != 0 {
                return err(ln, "AMO address operand must have zero offset");
            }
            Ok(Instr::Amo {
                op,
                width,
                rd: xreg(&ops[0], ln)?,
                rs2: xreg(&ops[1], ln)?,
                rs1,
            })
        }
        _ if m.starts_with('f') => parse_float(m, ops, ln),
        _ => err(ln, format!("unknown mnemonic `{m}`")),
    }
}

fn precision(suffix: &str, ln: usize) -> Result<Precision, AsmError> {
    match suffix {
        "s" => Ok(Precision::S),
        "d" => Ok(Precision::D),
        _ => err(ln, format!("bad precision suffix `.{suffix}`")),
    }
}

fn parse_float(m: &str, ops: Vec<String>, ln: usize) -> Result<Instr, AsmError> {
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(ln, format!("`{m}` expects {n} operands, got {}", ops.len()))
        }
    };
    match m {
        "flw" | "fld" => {
            need(2)?;
            let (offset, rs1) = mem_operand(&ops[1], ln)?;
            Ok(Instr::FLoad {
                precision: if m == "flw" {
                    Precision::S
                } else {
                    Precision::D
                },
                rd: freg(&ops[0], ln)?,
                rs1,
                offset,
            })
        }
        "fsw" | "fsd" => {
            need(2)?;
            let (offset, rs1) = mem_operand(&ops[1], ln)?;
            Ok(Instr::FStore {
                precision: if m == "fsw" {
                    Precision::S
                } else {
                    Precision::D
                },
                rs2: freg(&ops[0], ln)?,
                rs1,
                offset,
            })
        }
        "fmv.x.w" | "fmv.x.d" => {
            need(2)?;
            Ok(Instr::FMvToInt {
                precision: if m.ends_with('w') {
                    Precision::S
                } else {
                    Precision::D
                },
                rd: xreg(&ops[0], ln)?,
                rs1: freg(&ops[1], ln)?,
            })
        }
        "fmv.w.x" | "fmv.d.x" => {
            need(2)?;
            Ok(Instr::FMvFromInt {
                precision: if m == "fmv.w.x" {
                    Precision::S
                } else {
                    Precision::D
                },
                rd: freg(&ops[0], ln)?,
                rs1: xreg(&ops[1], ln)?,
            })
        }
        "fcvt.d.s" => {
            need(2)?;
            Ok(Instr::FCvtPrec {
                to: Precision::D,
                rd: freg(&ops[0], ln)?,
                rs1: freg(&ops[1], ln)?,
            })
        }
        "fcvt.s.d" => {
            need(2)?;
            Ok(Instr::FCvtPrec {
                to: Precision::S,
                rd: freg(&ops[0], ln)?,
                rs1: freg(&ops[1], ln)?,
            })
        }
        _ => {
            let mut parts = m.split('.');
            let base = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            match base {
                "fcvt" => {
                    // fcvt.<to>.<from> [rtz]
                    if rest.len() < 2 {
                        return err(ln, format!("bad fcvt form `{m}`"));
                    }
                    let (to, from) = (rest[0], rest[1]);
                    let int_names = ["w", "wu", "l", "lu"];
                    if int_names.contains(&to) {
                        // float -> int
                        if ops.len() != 2 {
                            return err(ln, "fcvt expects 2 operands");
                        }
                        Ok(Instr::FCvtToInt {
                            precision: precision(from, ln)?,
                            rd: xreg(&ops[0], ln)?,
                            rs1: freg(&ops[1], ln)?,
                            signed: !to.ends_with('u'),
                        })
                    } else if int_names.contains(&from) {
                        if ops.len() != 2 {
                            return err(ln, "fcvt expects 2 operands");
                        }
                        Ok(Instr::FCvtFromInt {
                            precision: precision(to, ln)?,
                            rd: freg(&ops[0], ln)?,
                            rs1: xreg(&ops[1], ln)?,
                            signed: !from.ends_with('u'),
                        })
                    } else {
                        err(ln, format!("bad fcvt form `{m}`"))
                    }
                }
                "fmadd" => {
                    need(4)?;
                    let p = precision(rest.first().copied().unwrap_or(""), ln)?;
                    Ok(Instr::FMadd {
                        precision: p,
                        rd: freg(&ops[0], ln)?,
                        rs1: freg(&ops[1], ln)?,
                        rs2: freg(&ops[2], ln)?,
                        rs3: freg(&ops[3], ln)?,
                    })
                }
                "feq" | "flt" | "fle" => {
                    need(3)?;
                    let p = precision(rest.first().copied().unwrap_or(""), ln)?;
                    let op = match base {
                        "feq" => FCmpOp::Eq,
                        "flt" => FCmpOp::Lt,
                        _ => FCmpOp::Le,
                    };
                    Ok(Instr::FCmp {
                        op,
                        precision: p,
                        rd: xreg(&ops[0], ln)?,
                        rs1: freg(&ops[1], ln)?,
                        rs2: freg(&ops[2], ln)?,
                    })
                }
                "fsqrt" | "fexp" | "fmv" | "fneg" | "fabs" => {
                    need(2)?;
                    let p = precision(rest.first().copied().unwrap_or(""), ln)?;
                    let (op, rs2_same) = match base {
                        "fsqrt" => (FpOp::Sqrt, false),
                        "fexp" => (FpOp::Exp, false),
                        "fmv" => (FpOp::Sgnj, true),
                        "fneg" => (FpOp::Sgnjn, true),
                        _ => (FpOp::Sgnjx, true),
                    };
                    let rs1 = freg(&ops[1], ln)?;
                    Ok(Instr::FOp {
                        op,
                        precision: p,
                        rd: freg(&ops[0], ln)?,
                        rs1,
                        rs2: if rs2_same { rs1 } else { 0 },
                    })
                }
                "fadd" | "fsub" | "fmul" | "fdiv" | "fmin" | "fmax" | "fsgnj" | "fsgnjn"
                | "fsgnjx" => {
                    need(3)?;
                    let p = precision(rest.first().copied().unwrap_or(""), ln)?;
                    let op = match base {
                        "fadd" => FpOp::Add,
                        "fsub" => FpOp::Sub,
                        "fmul" => FpOp::Mul,
                        "fdiv" => FpOp::Div,
                        "fmin" => FpOp::Min,
                        "fmax" => FpOp::Max,
                        "fsgnj" => FpOp::Sgnj,
                        "fsgnjn" => FpOp::Sgnjn,
                        _ => FpOp::Sgnjx,
                    };
                    Ok(Instr::FOp {
                        op,
                        precision: p,
                        rd: freg(&ops[0], ln)?,
                        rs1: freg(&ops[1], ln)?,
                        rs2: freg(&ops[2], ln)?,
                    })
                }
                _ => err(ln, format!("unknown float mnemonic `{m}`")),
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn parse_vector(m: &str, ops: Vec<String>, ln: usize) -> Result<Instr, AsmError> {
    let (ops, masked) = strip_mask(ops);
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(ln, format!("`{m}` expects {n} operands, got {}", ops.len()))
        }
    };

    // vsetvli rd, rs1, e<sew>[, m<lmul>][, ta][, ma]
    if m == "vsetvli" {
        if ops.len() < 3 {
            return err(ln, "vsetvli expects rd, rs1, e<sew>, ...");
        }
        let vtype = ops[2].to_ascii_lowercase();
        let sew_tok = vtype.strip_prefix('e').ok_or_else(|| AsmError {
            line: ln,
            message: format!("bad vtype `{}`", ops[2]),
        })?;
        return Ok(Instr::Vsetvli {
            rd: xreg(&ops[0], ln)?,
            rs1: xreg(&ops[1], ln)?,
            sew: sew_from_suffix(sew_tok, ln)?,
        });
    }

    // Vector loads/stores: vle<eew>.v, vse<eew>.v, vlse<eew>.v, vsse<eew>.v,
    // vluxei<eew>.v, vloxei<eew>.v, vsuxei<eew>.v.
    for (prefix, is_load, mode_kind) in [
        ("vle", true, 'u'),
        ("vse", false, 'u'),
        ("vlse", true, 's'),
        ("vsse", false, 's'),
        ("vluxei", true, 'i'),
        ("vloxei", true, 'i'),
        ("vsuxei", false, 'i'),
        ("vsoxei", false, 'i'),
    ] {
        if let Some(rest) = m.strip_prefix(prefix) {
            if let Some(eew_str) = rest.strip_suffix(".v") {
                // Guard against e.g. "vse" matching "vsetvli"-like strings.
                if eew_str.chars().all(|c| c.is_ascii_digit()) && !eew_str.is_empty() {
                    let eew = sew_from_suffix(eew_str, ln)?;
                    let (reg, base_op, extra) = match mode_kind {
                        'u' => {
                            need(2)?;
                            (vreg(&ops[0], ln)?, mem_operand(&ops[1], ln)?, None)
                        }
                        's' => {
                            need(3)?;
                            (
                                vreg(&ops[0], ln)?,
                                mem_operand(&ops[1], ln)?,
                                Some(xreg(&ops[2], ln)?),
                            )
                        }
                        _ => {
                            need(3)?;
                            (
                                vreg(&ops[0], ln)?,
                                mem_operand(&ops[1], ln)?,
                                Some(vreg(&ops[2], ln)?),
                            )
                        }
                    };
                    let (off, rs1) = base_op;
                    if off != 0 {
                        return err(ln, "vector memory base must have zero offset");
                    }
                    let mode = match mode_kind {
                        'u' => VAddrMode::Unit,
                        's' => VAddrMode::Strided(extra.expect("strided reg parsed")),
                        _ => VAddrMode::Indexed(extra.expect("index reg parsed")),
                    };
                    return Ok(if is_load {
                        Instr::VLoad {
                            eew,
                            vd: reg,
                            rs1,
                            mode,
                            masked,
                        }
                    } else {
                        Instr::VStore {
                            eew,
                            vs3: reg,
                            rs1,
                            mode,
                            masked,
                        }
                    });
                }
            }
        }
    }

    // Vector AMO: vamo<op>ei<eew>.v vd, (rs1), vs2
    if let Some(rest) = m.strip_prefix("vamo") {
        if let Some(body) = rest.strip_suffix(".v") {
            if let Some(pos) = body.find("ei") {
                let op = match &body[..pos] {
                    "add" => AmoOp::Add,
                    "swap" => AmoOp::Swap,
                    "min" => AmoOp::Min,
                    "max" => AmoOp::Max,
                    "and" => AmoOp::And,
                    "or" => AmoOp::Or,
                    "xor" => AmoOp::Xor,
                    other => return err(ln, format!("unsupported vector AMO `{other}`")),
                };
                let eew = sew_from_suffix(&body[pos + 2..], ln)?;
                need(3)?;
                let (off, rs1) = mem_operand(&ops[1], ln)?;
                if off != 0 {
                    return err(ln, "vector AMO base must have zero offset");
                }
                return Ok(Instr::VAmo {
                    op,
                    eew,
                    vd: vreg(&ops[0], ln)?,
                    rs1,
                    vs2: vreg(&ops[2], ln)?,
                    masked,
                });
            }
        }
    }

    // Move forms have two-component suffixes (vmv.v.x, vmv.x.s, vfmv.f.s);
    // handle them before the generic base/kind split.
    if m.starts_with("vmv.") || m.starts_with("vfmv.") {
        let mut it = m.splitn(3, '.');
        let head = it.next().unwrap_or("");
        let a = it.next().unwrap_or("");
        let b = it.next().unwrap_or("");
        need(2)?;
        return match (head, a, b) {
            ("vmv", "v", "v") => Ok(Instr::VMv {
                vd: vreg(&ops[0], ln)?,
                operand: VOperand::Vector(vreg(&ops[1], ln)?),
            }),
            ("vmv", "v", "x") => Ok(Instr::VMv {
                vd: vreg(&ops[0], ln)?,
                operand: VOperand::Scalar(xreg(&ops[1], ln)?),
            }),
            ("vmv", "v", "i") => Ok(Instr::VMv {
                vd: vreg(&ops[0], ln)?,
                operand: VOperand::Imm(imm(&ops[1], ln)?),
            }),
            ("vmv", "x", "s") => Ok(Instr::VMvToScalar {
                rd: xreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
            }),
            ("vmv", "s", "x") => Ok(Instr::VMvFromScalar {
                vd: vreg(&ops[0], ln)?,
                rs1: xreg(&ops[1], ln)?,
            }),
            ("vfmv", "v", "f") => Ok(Instr::VMv {
                vd: vreg(&ops[0], ln)?,
                operand: VOperand::Float(freg(&ops[1], ln)?),
            }),
            ("vfmv", "f", "s") => Ok(Instr::VFMvToScalar {
                rd: freg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
            }),
            _ => err(ln, format!("unknown move form `{m}`")),
        };
    }

    // Remaining vector forms: split base and operand-kind suffix.
    let (base, kind) = match m.rsplit_once('.') {
        Some((b, k)) => (b, k),
        None => (m, ""),
    };

    let operand = |tok: &str| -> Result<VOperand, AsmError> {
        match kind {
            "vv" | "vs" | "v" | "vvm" => Ok(VOperand::Vector(vreg(tok, ln)?)),
            "vx" | "x" | "vxm" => Ok(VOperand::Scalar(xreg(tok, ln)?)),
            "vi" | "i" | "vim" => Ok(VOperand::Imm(imm(tok, ln)?)),
            "vf" | "f" | "vfm" => Ok(VOperand::Float(freg(tok, ln)?)),
            _ => err(ln, format!("bad vector operand kind `.{kind}`")),
        }
    };

    match base {
        "vadd" | "vsub" | "vmul" | "vand" | "vor" | "vxor" | "vsll" | "vsrl" | "vmin" | "vmax" => {
            need(3)?;
            let op = match base {
                "vadd" => VIntOp::Add,
                "vsub" => VIntOp::Sub,
                "vmul" => VIntOp::Mul,
                "vand" => VIntOp::And,
                "vor" => VIntOp::Or,
                "vxor" => VIntOp::Xor,
                "vsll" => VIntOp::Sll,
                "vsrl" => VIntOp::Srl,
                "vmin" => VIntOp::Min,
                _ => VIntOp::Max,
            };
            Ok(Instr::VIntOp {
                op,
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
                operand: operand(&ops[2])?,
                masked,
            })
        }
        "vfadd" | "vfsub" | "vfmul" | "vfdiv" | "vfmin" | "vfmax" => {
            need(3)?;
            let op = match base {
                "vfadd" => VFpOp::Add,
                "vfsub" => VFpOp::Sub,
                "vfmul" => VFpOp::Mul,
                "vfdiv" => VFpOp::Div,
                "vfmin" => VFpOp::Min,
                _ => VFpOp::Max,
            };
            Ok(Instr::VFpOp {
                op,
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
                operand: operand(&ops[2])?,
                masked,
            })
        }
        "vfmacc" => {
            // vfmacc.vv vd, vs1, vs2  /  vfmacc.vf vd, fs1, vs2
            need(3)?;
            Ok(Instr::VFpOp {
                op: VFpOp::Macc,
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[2], ln)?,
                operand: operand(&ops[1])?,
                masked,
            })
        }
        "vfexp" => {
            need(2)?;
            Ok(Instr::VFpOp {
                op: VFpOp::Exp,
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
                operand: VOperand::Imm(0),
                masked,
            })
        }
        "vredsum" | "vredmax" | "vredmin" | "vfredusum" | "vfredosum" | "vfredsum" | "vfredmax"
        | "vfredmin" => {
            need(3)?;
            let op = match base {
                "vredsum" => VRedOp::Sum,
                "vredmax" => VRedOp::Max,
                "vredmin" => VRedOp::Min,
                "vfredmax" => VRedOp::FMax,
                "vfredmin" => VRedOp::FMin,
                _ => VRedOp::FSum,
            };
            Ok(Instr::VRed {
                op,
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
                vs1: vreg(&ops[2], ln)?,
            })
        }
        "vmseq" | "vmsne" | "vmslt" | "vmsle" | "vmsgt" | "vmsge" | "vmflt" | "vmfle" | "vmfeq"
        | "vmfge" => {
            need(3)?;
            let op = match base {
                "vmseq" => VCmpOp::Eq,
                "vmsne" => VCmpOp::Ne,
                "vmslt" => VCmpOp::Lt,
                "vmsle" => VCmpOp::Le,
                "vmsgt" => VCmpOp::Gt,
                "vmsge" => VCmpOp::Ge,
                "vmflt" => VCmpOp::FLt,
                "vmfle" => VCmpOp::FLe,
                "vmfeq" => VCmpOp::FEq,
                _ => VCmpOp::FGe,
            };
            Ok(Instr::VCmp {
                op,
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
                operand: operand(&ops[2])?,
            })
        }
        "vid" => {
            need(1)?;
            Ok(Instr::Vid {
                vd: vreg(&ops[0], ln)?,
                masked,
            })
        }
        "vmerge" => {
            // vmerge.vvm/vxm/vim vd, vs2, <operand>, v0
            if ops.len() == 4 && ops[3].eq_ignore_ascii_case("v0") {
                Ok(Instr::VMerge {
                    vd: vreg(&ops[0], ln)?,
                    vs2: vreg(&ops[1], ln)?,
                    operand: operand(&ops[2])?,
                })
            } else {
                err(ln, "vmerge expects vd, vs2, operand, v0")
            }
        }
        "vslidedown" => {
            need(3)?;
            Ok(Instr::VSlidedown {
                vd: vreg(&ops[0], ln)?,
                vs2: vreg(&ops[1], ln)?,
                operand: operand(&ops[2])?,
            })
        }
        _ => err(ln, format!("unknown vector mnemonic `{m}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_basics_parse() {
        let p = assemble(
            "start: li x3, 0x100
             addi x4, x3, -8
             add  x5, x3, x4
             ld   x6, 8(x5)
             sd   x6, (x3)
             beq  x6, x0, start
             halt",
        )
        .unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.instrs()[0], Instr::Li { rd: 3, imm: 0x100 });
        assert_eq!(
            p.instrs()[3],
            Instr::Load {
                width: Width::D,
                signed: true,
                rd: 6,
                rs1: 5,
                offset: 8
            }
        );
    }

    #[test]
    fn paper_fig4_line_parses() {
        // "vse64.v  v1, (x7)" from Fig. 4.
        let p = assemble("vse64.v v1, (x7)").unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::VStore {
                eew: Sew::E64,
                vs3: 1,
                rs1: 7,
                mode: VAddrMode::Unit,
                masked: false,
            }
        );
    }

    #[test]
    fn paper_fig8_kernel_assembles() {
        // The reduction kernel body of Fig. 8 (operands space-separated).
        let src = "
            // load input data
            VLE64.v    v2 (x1)
            VMV.v.i    v1 0
            // reduce to scalar sum
            VREDSUM.vs v3 v2 v1
            // move to scalar register
            VMV.x.s    x4 v3
            // local sum's scpad addr
            LI         x3 0x10000000
            // accumulate local sum
            AMOADD.D   x4 x4 (x3)
        ";
        let p = assemble(src).unwrap();
        assert_eq!(p.len(), 6);
        assert!(matches!(
            p.instrs()[2],
            Instr::VRed {
                op: VRedOp::Sum,
                ..
            }
        ));
        assert!(matches!(
            p.instrs()[5],
            Instr::Amo {
                op: AmoOp::Add,
                width: Width::D,
                ..
            }
        ));
    }

    #[test]
    fn abi_names_resolve() {
        let p = assemble("add a0, sp, t3").unwrap();
        assert_eq!(
            p.instrs()[0],
            Instr::Op {
                op: IntOp::Add,
                rd: 10,
                rs1: 2,
                rs2: 28
            }
        );
    }

    #[test]
    fn float_registers_and_ops() {
        let p = assemble(
            "flw fa0, 4(a1)
             fadd.s ft0, fa0, fa0
             fmadd.s ft1, ft0, fa0, ft0
             fsqrt.s ft2, ft1
             fexp.s ft3, ft2
             feq.s a2, ft3, ft3
             fsw ft3, (a1)",
        )
        .unwrap();
        assert_eq!(p.len(), 7);
        assert!(matches!(
            p.instrs()[4],
            Instr::FOp {
                op: FpOp::Exp,
                precision: Precision::S,
                ..
            }
        ));
    }

    #[test]
    fn vector_forms_parse() {
        let p = assemble(
            "vsetvli t0, x0, e32, m1
             vle32.v v2, (a0)
             vlse32.v v3, (a1), t1
             vluxei32.v v4, (a2), v2
             vadd.vx v5, v2, t2
             vfmacc.vf v6, fa0, v5
             vmslt.vx v0, v2, t3
             vse32.v v5, (a3), v0.t
             vamoaddei32.v v7, (a4), v4",
        )
        .unwrap();
        assert_eq!(p.len(), 9);
        assert!(matches!(
            p.instrs()[3],
            Instr::VLoad {
                mode: VAddrMode::Indexed(2),
                ..
            }
        ));
        assert!(matches!(p.instrs()[7], Instr::VStore { masked: true, .. }));
        assert!(matches!(
            p.instrs()[8],
            Instr::VAmo {
                op: AmoOp::Add,
                eew: Sew::E32,
                ..
            }
        ));
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nbogus x1, x2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_label_is_an_error() {
        let e = assemble("beq x1, x2, nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a:\nnop\na:\nnop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn branch_pseudos_resolve() {
        let p = assemble(
            "loop: addi x1, x1, -1
             bnez x1, loop
             j loop",
        )
        .unwrap();
        assert_eq!(
            p.instrs()[1],
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: 1,
                rs2: 0,
                target: 0
            }
        );
        assert_eq!(p.instrs()[2], Instr::Jal { rd: 0, target: 0 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "# full line comment
             // another
             nop ; trailing
             nop // trailing 2
             ",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }
}
