//! Group-dispatch vs per-lane interpreter microbenchmarks.
//!
//! Three kernels bracket the interpreter's regimes — a converged scalar
//! ALU loop (pure decode overhead), a strided vector load loop (memory
//! effect reporting), and a lane-divergent branch loop (partial groups) —
//! each dispatched two ways over an 8-lane SIMT group:
//!
//! * `per_lane`: the engine's pre-group loop — scan for the minimum pc,
//!   then call [`step`] for every lane parked there, re-matching the
//!   instruction per lane and collecting `Effect` values;
//! * `group`: [`step_group`] — decode once, tight lane loop, memory
//!   operations written into a reused [`EffectBuf`].
//!
//! The pairs print side by side so the `perf-gate` CI log shows the
//! group-dispatch win directly (`M2NDP_BENCH_MS` shortens the window).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use m2ndp_mem::MainMemory;
use m2ndp_riscv::exec::{step, step_group, Effect, EffectBuf, MainMemoryIface, MemOp, ThreadCtx};
use m2ndp_riscv::{assemble, Program};

const LANES: usize = 8;

/// Converged scalar loop: every issue is a full-width ALU or branch group.
const ALU_LOOP: &str = "
    li x4, 1000
    loop: addi x4, x4, -1
    bnez x4, loop
    halt";

/// Strided vector loads: every iteration reports `vl` memory operations
/// per lane through the effect channel.
const STRIDED_VECTOR_LOAD: &str = "
    vsetvli x0, x0, e32, m1
    li x5, 64
    li x4, 100
    loop: vlse32.v v1, (x1), x5
    add x1, x1, x5
    addi x4, x4, -1
    bnez x4, loop
    halt";

/// Lane-divergent branches: `x2` differs per lane, so the group splits and
/// re-converges, exercising partial-group issues.
const DIVERGENT_BRANCH: &str = "
    li x4, 200
    loop: andi x6, x2, 0x40
    beqz x6, even
    addi x5, x5, 3
    j next
    even: addi x5, x5, 1
    next: addi x4, x4, -1
    bnez x4, loop
    halt";

fn spawn_lanes() -> Vec<ThreadCtx> {
    (0..LANES)
        .map(|i| {
            let mut ctx = ThreadCtx::new();
            ctx.x[1] = 0x1_0000 + i as u64 * 0x40;
            ctx.x[2] = i as u64 * 0x40;
            ctx
        })
        .collect()
}

fn reset_lanes(ctxs: &mut [ThreadCtx]) {
    for (i, ctx) in ctxs.iter_mut().enumerate() {
        ctx.reset();
        ctx.x[1] = 0x1_0000 + i as u64 * 0x40;
        ctx.x[2] = i as u64 * 0x40;
    }
}

/// Runs the program to completion with the engine's pre-group per-lane
/// loop; returns total lanes issued (kept live via `black_box`).
fn run_per_lane(ctxs: &mut [ThreadCtx], prog: &Program, mem: &mut MainMemory) -> u64 {
    let mut iface = MainMemoryIface::new(mem);
    let mut memops: Vec<MemOp> = Vec::new();
    let mut total = 0u64;
    while let Some(min_pc) = ctxs.iter().filter(|c| !c.done).map(|c| c.pc).min() {
        if prog.fetch(min_pc).is_none() {
            break;
        }
        memops.clear();
        let mut first: Option<Effect> = None;
        for ctx in ctxs.iter_mut() {
            if ctx.done || ctx.pc != min_pc {
                continue;
            }
            total += 1;
            match step(ctx, prog, &mut iface) {
                Ok(effect) => {
                    match &effect {
                        Effect::Mem(op) => memops.push(*op),
                        Effect::VMem(ops) => memops.extend_from_slice(ops),
                        _ => {}
                    }
                    if first.is_none() {
                        first = Some(effect);
                    }
                }
                Err(_) => ctx.done = true,
            }
        }
        black_box((&first, &memops));
    }
    total
}

/// Runs the program to completion through `step_group`.
fn run_group(
    ctxs: &mut [ThreadCtx],
    prog: &Program,
    mem: &mut MainMemory,
    buf: &mut EffectBuf,
) -> u64 {
    let mut iface = MainMemoryIface::new(mem);
    let mut total = 0u64;
    while let Some(min_pc) = ctxs.iter().filter(|c| !c.done).map(|c| c.pc).min() {
        if prog.fetch(min_pc).is_none() {
            break;
        }
        let group = step_group(ctxs, min_pc, prog, &mut iface, buf);
        total += u64::from(group.lanes);
        black_box((group.effect, buf.memops()));
    }
    total
}

fn bench_pair(c: &mut Criterion, name: &str, source: &str) {
    let prog = assemble(source).expect(name);
    let mut mem = MainMemory::new();
    let mut ctxs = spawn_lanes();
    let mut buf = EffectBuf::new();

    c.bench_function(&format!("interp/{name}/per_lane"), |b| {
        b.iter(|| {
            reset_lanes(&mut ctxs);
            run_per_lane(&mut ctxs, &prog, &mut mem)
        })
    });
    c.bench_function(&format!("interp/{name}/group"), |b| {
        b.iter(|| {
            reset_lanes(&mut ctxs);
            run_group(&mut ctxs, &prog, &mut mem, &mut buf)
        })
    });
}

fn interp_benches(c: &mut Criterion) {
    bench_pair(c, "alu-loop", ALU_LOOP);
    bench_pair(c, "strided-vector-load", STRIDED_VECTOR_LOAD);
    bench_pair(c, "divergent-branch", DIVERGENT_BRANCH);
}

criterion_group!(benches, interp_benches);
criterion_main!(benches);
