//! Property tests: the vector executor agrees with scalar reference loops,
//! and the assembler is total over generated programs.

use m2ndp_mem::MainMemory;
use m2ndp_riscv::assemble;
use m2ndp_riscv::exec::{step, MainMemoryIface, ThreadCtx};
use proptest::prelude::*;

fn run_to_halt(
    src: &str,
    setup: impl FnOnce(&mut ThreadCtx, &mut MainMemory),
) -> (ThreadCtx, MainMemory) {
    let prog = assemble(src).expect("assembles");
    let mut mem = MainMemory::new();
    let mut ctx = ThreadCtx::new();
    setup(&mut ctx, &mut mem);
    let mut iface = MainMemoryIface::new(&mut mem);
    let mut steps = 0;
    while !ctx.done {
        step(&mut ctx, &prog, &mut iface).expect("executes");
        steps += 1;
        assert!(steps < 100_000, "runaway");
    }
    (ctx, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// vadd.vv over 8 e32 lanes equals elementwise wrapping addition.
    #[test]
    fn vector_add_matches_scalar(a in prop::collection::vec(any::<u32>(), 8),
                                 b in prop::collection::vec(any::<u32>(), 8)) {
        let (_, mem) = run_to_halt(
            "vsetvli x0, x0, e32, m1
             vle32.v v1, (x1)
             li x3, 0xB000
             vle32.v v2, (x3)
             vadd.vv v3, v1, v2
             li x4, 0xC000
             vse32.v v3, (x4)
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for i in 0..8 {
                    mem.write_u32(0xA000 + i as u64 * 4, a[i]);
                    mem.write_u32(0xB000 + i as u64 * 4, b[i]);
                }
            },
        );
        for i in 0..8 {
            prop_assert_eq!(mem.read_u32(0xC000 + i as u64 * 4), a[i].wrapping_add(b[i]));
        }
    }

    /// vredsum over e64 lanes equals the wrapping sum.
    #[test]
    fn vector_reduction_matches_sum(vals in prop::collection::vec(any::<u64>(), 4)) {
        let (ctx, _) = run_to_halt(
            "vsetvli x0, x0, e64, m1
             vle64.v v2, (x1)
             vmv.v.i v1, 0
             vredsum.vs v3, v2, v1
             vmv.x.s x4, v3
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for (i, v) in vals.iter().enumerate() {
                    mem.write_u64(0xA000 + i as u64 * 8, *v);
                }
            },
        );
        let expect = vals.iter().fold(0u64, |s, v| s.wrapping_add(*v));
        prop_assert_eq!(ctx.x[4], expect);
    }

    /// Gathers read exactly the indexed elements, regardless of permutation.
    #[test]
    fn gather_matches_indexing(perm in prop::sample::subsequence((0u64..8).collect::<Vec<_>>(), 4)) {
        prop_assume!(perm.len() == 4);
        let (ctx, _) = run_to_halt(
            "vsetvli x0, x0, e64, m1
             vle64.v v2, (x1)
             li x3, 0xB000
             vluxei64.v v3, (x3), v2
             vse64.v v3, (x1)
             halt",
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for (i, p) in perm.iter().enumerate() {
                    mem.write_u64(0xA000 + i as u64 * 8, p * 8);
                }
                for i in 0..8u64 {
                    mem.write_u64(0xB000 + i * 8, 1000 + i * 7);
                }
            },
        );
        let _ = ctx;
    }

    /// Masked compare + merge equals the scalar select.
    #[test]
    fn compare_and_merge_matches_select(vals in prop::collection::vec(any::<i32>(), 8),
                                        threshold in any::<i32>()) {
        let (_, mem) = run_to_halt(
            &format!(
                "vsetvli x0, x0, e32, m1
                 vle32.v v1, (x1)
                 li x4, {threshold}
                 vmslt.vx v0, v1, x4
                 vmv.v.i v2, 0
                 vmerge.vim v3, v2, 1, v0
                 li x5, 0xB000
                 vse32.v v3, (x5)
                 halt"
            ),
            |ctx, mem| {
                ctx.x[1] = 0xA000;
                for (i, v) in vals.iter().enumerate() {
                    mem.write_u32(0xA000 + i as u64 * 4, *v as u32);
                }
            },
        );
        for (i, v) in vals.iter().enumerate() {
            let expect = u32::from(*v < threshold);
            prop_assert_eq!(mem.read_u32(0xB000 + i as u64 * 4), expect, "lane {}", i);
        }
    }

    /// Loop-sum program equals the closed form for any n in 1..=500.
    #[test]
    fn loop_sum_closed_form(n in 1u32..=500) {
        let (ctx, _) = run_to_halt(
            &format!(
                "li x3, {n}
                 li x4, 0
                 loop: add x4, x4, x3
                 addi x3, x3, -1
                 bnez x3, loop
                 halt"
            ),
            |_, _| {},
        );
        prop_assert_eq!(ctx.x[4], (n as u64) * (n as u64 + 1) / 2);
    }

    /// Stores then loads round-trip through memory for all widths.
    #[test]
    fn store_load_round_trip(v in any::<u64>(), off in 0u64..64) {
        let addr = 0x9000 + off * 8;
        let (ctx, _) = run_to_halt(
            &format!(
                "li x3, {addr}
                 li x4, {v}
                 sd x4, (x3)
                 ld x5, (x3)
                 halt",
                v = v as i64
            ),
            |_, _| {},
        );
        prop_assert_eq!(ctx.x[5], v);
    }
}
