//! Exhaustive classification tests for [`Instr::is_mem`] and
//! [`Instr::is_vector`].
//!
//! The match below lists **every** variant explicitly — no `_` arm — so
//! adding an `Instr` variant without deciding its memory/vector
//! classification fails to compile here, and [`gen::all_variants`] (one
//! instance per variant) drives the runtime check over each one.

use m2ndp_riscv::gen::all_variants;
use m2ndp_riscv::Instr;

/// The expected classification, spelled out per variant. Compilation of
/// this match is the real test: extend it (and `gen::all_variants`) when
/// adding a variant.
fn expected(instr: &Instr) -> (bool, bool) {
    // (is_mem, is_vector)
    match instr {
        Instr::Li { .. } | Instr::Lui { .. } | Instr::Op { .. } | Instr::OpImm { .. } => {
            (false, false)
        }
        Instr::Load { .. } | Instr::Store { .. } | Instr::Amo { .. } => (true, false),
        Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. } => (false, false),
        Instr::Fence | Instr::Halt => (false, false),
        Instr::FLoad { .. } | Instr::FStore { .. } => (true, false),
        Instr::FOp { .. }
        | Instr::FMadd { .. }
        | Instr::FCmp { .. }
        | Instr::FCvtFromInt { .. }
        | Instr::FCvtToInt { .. }
        | Instr::FMvToInt { .. }
        | Instr::FMvFromInt { .. }
        | Instr::FCvtPrec { .. } => (false, false),
        Instr::Vsetvli { .. } => (false, true),
        Instr::VLoad { .. } | Instr::VStore { .. } | Instr::VAmo { .. } => (true, true),
        Instr::VIntOp { .. }
        | Instr::VFpOp { .. }
        | Instr::VCmp { .. }
        | Instr::VMerge { .. }
        | Instr::VSlidedown { .. }
        | Instr::VRed { .. }
        | Instr::VMv { .. }
        | Instr::VMvToScalar { .. }
        | Instr::VMvFromScalar { .. }
        | Instr::VFMvToScalar { .. }
        | Instr::Vid { .. } => (false, true),
    }
}

#[test]
fn classification_covers_every_variant() {
    let variants = all_variants();
    assert_eq!(variants.len(), 37, "one instance per Instr variant");
    for instr in &variants {
        let (mem, vector) = expected(instr);
        assert_eq!(instr.is_mem(), mem, "is_mem for {instr:?}");
        assert_eq!(instr.is_vector(), vector, "is_vector for {instr:?}");
    }
}

#[test]
fn memory_and_vector_sets_have_the_expected_sizes() {
    let variants = all_variants();
    let mem = variants.iter().filter(|i| i.is_mem()).count();
    let vector = variants.iter().filter(|i| i.is_vector()).count();
    // 8 memory forms: Load, Store, Amo, FLoad, FStore, VLoad, VStore, VAmo.
    assert_eq!(mem, 8);
    // 15 vector forms (Table IV's 256-bit unit plus the vector-AMO ext).
    assert_eq!(vector, 15);
}
