//! `m2ndp-trace`: summarize, rank, and export M²NDP observability traces.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(m2ndp_trace::main_impl(args));
}
