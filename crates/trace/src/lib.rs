//! The `m2ndp-trace` command-line inspector for the observability layer's
//! Chrome trace-event exports (`figures --trace DIR`, or any JSON produced
//! by `ServeReport::chrome_trace`).
//!
//! Three subcommands:
//!
//! * `summary <file.json>...` — per-request latency breakdown recovered
//!   from the `serve` phase spans: queue → launch → execute → link, whose
//!   durations sum exactly to each request's end-to-end latency;
//! * `top <file.json>... [--annotate]` — the hottest kernels, devices, and
//!   tenants by busy time; `--annotate` reassembles the hottest kernel's
//!   embedded disassembly (via `m2ndp_riscv`) and prints the
//!   instruction-level listing behind its spans;
//! * `export [--devices N] [--rate R] [--requests N] [--out FILE]` — run a
//!   tiny deterministic traced serving demo and write its Perfetto-loadable
//!   trace (the quickest way to get a real trace file without a sweep).
//!
//! `--format json` switches every report (and all diagnostics) to the
//! machine-readable shape shared with `m2ndp-asm`: a top-level
//! `{"ok": bool, "diagnostics": [...]}` object with subcommand-specific
//! payload keys alongside.
//!
//! The library surface exists so integration tests can drive the CLI logic
//! without spawning processes; `src/main.rs` is a thin wrapper.

use std::collections::HashMap;
use std::fmt::Write as _;

use m2ndp_core::fleet::{Fleet, FleetConfig};
use m2ndp_core::{CxlM2ndpDevice, M2ndpConfig};
use m2ndp_cxl::SwitchConfig;
use m2ndp_host::offload::OffloadMechanism;
use m2ndp_host::serve::{self, ServeBackend, ServeConfig, TenantSpec};
use m2ndp_sim::json::{report_json, Diagnostic, Json};

/// Usage text printed on bad invocations.
pub const USAGE: &str = "usage: m2ndp-trace <summary|top|export> [options]

  summary <file.json>...        per-request phase breakdown (queue/launch/
                                execute/link sum to end-to-end latency)
  top <file.json>...            hottest kernels, devices, and tenants
      --annotate                instruction-level listing of the hottest
                                kernel (reassembled from the embedded
                                disassembly)
  export                        run a tiny traced serving demo and write
                                its Chrome trace-event / Perfetto JSON
      --devices N               fleet size (default 1 = standalone device)
      --rate R                  offered load, requests/s (default 2e5)
      --requests N              total requests across tenants (default 20)
      --out FILE                output path (default: stdout)
  --format text|json            report format (json shares the diagnostics
                                shape with m2ndp-asm)";

/// A CLI failure: what to print on stderr (exit status is always 1). In
/// `--format json` mode the same diagnostics are also emitted to stdout
/// inside the shared `{"ok": false, "diagnostics": [...]}` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// The message, already formatted as `file: reason`.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Trace document model
// ---------------------------------------------------------------------------

/// One decoded timeline entry: a `ph:"X"` complete span, or a `ph:"i"`
/// instant (`dur_us == 0.0`, `instant == true`).
#[derive(Debug, Clone)]
pub struct Span {
    /// Event name (`"kernel kvstore_get"`, `"queue"`, ...).
    pub name: String,
    /// Taxonomy family (`kernel`/`wave`/`l2`/`dram`/`switch`/`serve`).
    pub cat: String,
    /// Owning device (trace process id).
    pub pid: u64,
    /// Lane within the device (trace thread id).
    pub tid: u64,
    /// Start timestamp (µs — the Chrome trace-event unit).
    pub ts_us: f64,
    /// Duration (µs; `0.0` for instants).
    pub dur_us: f64,
    /// Whether this is an instant rather than a complete span.
    pub instant: bool,
    /// The typed `args` payload.
    pub args: Json,
}

/// One kernel's annotation record from `otherData.kernels`.
#[derive(Debug, Clone)]
pub struct KernelInfo {
    /// Registered kernel id.
    pub id: u64,
    /// Kernel name (matches the `kernel <name>` span names).
    pub name: String,
    /// Canonical disassembly of the kernel body.
    pub disassembly: String,
}

/// A validated trace file: timeline entries plus kernel annotations.
#[derive(Debug, Clone, Default)]
pub struct TraceDoc {
    /// All `X`/`i` entries in file order (metadata `M` entries are
    /// validated and dropped).
    pub spans: Vec<Span>,
    /// Kernel disassembly annotations, when the exporter embedded them.
    pub kernels: Vec<KernelInfo>,
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::U64(u) => Some(*u),
        _ => None,
    }
}

/// Parses and schema-validates one Chrome trace-event export.
///
/// # Errors
/// Returns a file-anchored [`Diagnostic`] on malformed JSON, a missing or
/// ill-typed `traceEvents` array, or an entry whose phase/fields don't
/// form a valid `M`/`X`/`i` record.
pub fn parse_trace(path: &str, text: &str) -> Result<TraceDoc, Diagnostic> {
    let err = |msg: String| Diagnostic::error_in(path, msg);
    let doc = Json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
    let Some(events) = doc.get("traceEvents") else {
        return Err(err("missing `traceEvents` array".to_string()));
    };
    let Json::Arr(events) = events else {
        return Err(err("`traceEvents` is not an array".to_string()));
    };
    let mut out = TraceDoc::default();
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| err(format!("traceEvents[{i}]: missing `{key}`")))
        };
        let ph = as_str(field("ph")?)
            .ok_or_else(|| err(format!("traceEvents[{i}]: `ph` is not a string")))?;
        match ph {
            "M" => {
                // Metadata names a pid/tid coordinate; only shape-checked.
                field("name")?;
                field("pid")?;
            }
            "X" | "i" => {
                let instant = ph == "i";
                let num = |key: &str| {
                    field(key)?
                        .as_f64()
                        .ok_or_else(|| err(format!("traceEvents[{i}]: `{key}` is not a number")))
                };
                let dur_us = if instant { 0.0 } else { num("dur")? };
                out.spans.push(Span {
                    name: as_str(field("name")?)
                        .ok_or_else(|| err(format!("traceEvents[{i}]: `name` is not a string")))?
                        .to_string(),
                    cat: as_str(field("cat")?).unwrap_or_default().to_string(),
                    pid: as_u64(field("pid")?)
                        .ok_or_else(|| err(format!("traceEvents[{i}]: `pid` is not an integer")))?,
                    tid: as_u64(field("tid")?)
                        .ok_or_else(|| err(format!("traceEvents[{i}]: `tid` is not an integer")))?,
                    ts_us: num("ts")?,
                    dur_us,
                    instant,
                    args: ev.get("args").cloned().unwrap_or(Json::Obj(Vec::new())),
                });
            }
            other => {
                return Err(err(format!(
                    "traceEvents[{i}]: unsupported phase `{other}`"
                )))
            }
        }
    }
    if let Some(Json::Arr(kernels)) = doc.get("otherData").and_then(|o| o.get("kernels")) {
        for (i, k) in kernels.iter().enumerate() {
            let get_str = |key: &str| {
                k.get(key)
                    .and_then(as_str)
                    .map(str::to_string)
                    .ok_or_else(|| err(format!("otherData.kernels[{i}]: missing `{key}`")))
            };
            out.kernels.push(KernelInfo {
                id: k.get("id").and_then(as_u64).unwrap_or(u64::MAX),
                name: get_str("name")?,
                disassembly: get_str("disassembly")?,
            });
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------------

/// The four request phases, in pipeline order (matches
/// `m2ndp_sim::trace::ReqPhase`).
pub const PHASES: [&str; 4] = ["queue", "launch", "execute", "link"];

/// One request's recovered phase breakdown.
#[derive(Debug, Clone)]
pub struct RequestSummary {
    /// Issuing tenant index.
    pub tenant: u64,
    /// Per-tenant sequence number.
    pub seq: u64,
    /// Device that served the request.
    pub device: u64,
    /// queue/launch/execute/link durations (ns).
    pub phases: [f64; 4],
}

impl RequestSummary {
    /// End-to-end latency (ns): the exact sum of the four phases.
    pub fn total_ns(&self) -> f64 {
        self.phases.iter().sum()
    }
}

/// Recovers per-request summaries from a trace's `serve` spans, in first
/// appearance (global arrival) order.
///
/// # Errors
/// Returns a [`Diagnostic`] when a `serve` span lacks its `tenant`/`seq`
/// args, names an unknown phase, or a request is missing one of its four
/// phases — all signs of a trace not produced by this workspace's exporter.
pub fn request_summaries(path: &str, doc: &TraceDoc) -> Result<Vec<RequestSummary>, Diagnostic> {
    let err = |msg: String| Diagnostic::error_in(path, msg);
    let mut order: Vec<(u64, u64)> = Vec::new();
    let mut map: HashMap<(u64, u64), (RequestSummary, u8)> = HashMap::new();
    for span in doc.spans.iter().filter(|s| s.cat == "serve" && !s.instant) {
        let tenant = span
            .args
            .get("tenant")
            .and_then(as_u64)
            .ok_or_else(|| err(format!("serve span `{}` lacks args.tenant", span.name)))?;
        let seq = span
            .args
            .get("seq")
            .and_then(as_u64)
            .ok_or_else(|| err(format!("serve span `{}` lacks args.seq", span.name)))?;
        let idx = PHASES
            .iter()
            .position(|p| *p == span.name)
            .ok_or_else(|| err(format!("unknown serve phase `{}`", span.name)))?;
        let entry = map.entry((tenant, seq)).or_insert_with(|| {
            order.push((tenant, seq));
            (
                RequestSummary {
                    tenant,
                    seq,
                    device: span.pid,
                    phases: [0.0; 4],
                },
                0,
            )
        });
        entry.0.phases[idx] = span.dur_us * 1e3;
        entry.1 |= 1 << idx;
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let (summary, mask) = map.remove(&key).expect("keyed by order");
        if mask != 0b1111 {
            return Err(err(format!(
                "request tenant={} seq={} is missing {} of its 4 phases",
                key.0,
                key.1,
                4 - mask.count_ones()
            )));
        }
        out.push(summary);
    }
    Ok(out)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Per-tenant aggregate of a summary run.
#[derive(Debug, Clone)]
pub struct TenantAggregate {
    /// Tenant index.
    pub tenant: u64,
    /// Requests seen.
    pub count: u64,
    /// Mean duration of each phase (ns).
    pub phase_mean_ns: [f64; 4],
    /// Median end-to-end latency (ns).
    pub p50_ns: f64,
    /// Tail end-to-end latency (ns).
    pub p95_ns: f64,
}

/// Aggregates request summaries per tenant (ascending tenant index).
pub fn tenant_aggregates(reqs: &[RequestSummary]) -> Vec<TenantAggregate> {
    let mut tenants: Vec<u64> = reqs.iter().map(|r| r.tenant).collect();
    tenants.sort_unstable();
    tenants.dedup();
    tenants
        .into_iter()
        .map(|tenant| {
            let rows: Vec<&RequestSummary> = reqs.iter().filter(|r| r.tenant == tenant).collect();
            let mut phase_mean_ns = [0.0; 4];
            for r in &rows {
                for (acc, p) in phase_mean_ns.iter_mut().zip(r.phases) {
                    *acc += p;
                }
            }
            let n = rows.len() as f64;
            for acc in &mut phase_mean_ns {
                *acc /= n;
            }
            let mut totals: Vec<f64> = rows.iter().map(|r| r.total_ns()).collect();
            totals.sort_by(f64::total_cmp);
            TenantAggregate {
                tenant,
                count: rows.len() as u64,
                phase_mean_ns,
                p50_ns: percentile(&totals, 0.50),
                p95_ns: percentile(&totals, 0.95),
            }
        })
        .collect()
}

/// Renders the `summary` text report for one file.
pub fn summary_text(path: &str, reqs: &[RequestSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {} request(s)", reqs.len());
    let _ = writeln!(
        out,
        "  {:<8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "tenant", "count", "queue", "launch", "execute", "link", "p50", "p95"
    );
    for agg in tenant_aggregates(reqs) {
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            agg.tenant,
            agg.count,
            agg.phase_mean_ns[0],
            agg.phase_mean_ns[1],
            agg.phase_mean_ns[2],
            agg.phase_mean_ns[3],
            agg.p50_ns,
            agg.p95_ns
        );
    }
    let mut slowest: Vec<&RequestSummary> = reqs.iter().collect();
    slowest.sort_by(|a, b| f64::total_cmp(&b.total_ns(), &a.total_ns()));
    slowest.truncate(10);
    let _ = writeln!(out, "  slowest requests (ns; phases sum to end-to-end):");
    for r in slowest {
        let _ =
            writeln!(
            out,
            "    t{} #{:<6} dev{} queue {:.1} + launch {:.1} + execute {:.1} + link {:.1} = {:.1}",
            r.tenant, r.seq, r.device, r.phases[0], r.phases[1], r.phases[2], r.phases[3],
            r.total_ns()
        );
    }
    out
}

/// The `summary` payload for `--format json`.
pub fn summary_payload(path: &str, reqs: &[RequestSummary]) -> Vec<(String, Json)> {
    let req_json = |r: &RequestSummary| {
        let mut pairs = vec![
            ("tenant".to_string(), Json::U64(r.tenant)),
            ("seq".to_string(), Json::U64(r.seq)),
            ("device".to_string(), Json::U64(r.device)),
        ];
        for (name, dur) in PHASES.iter().zip(r.phases) {
            pairs.push((format!("{name}_ns"), Json::F64(dur)));
        }
        pairs.push(("total_ns".to_string(), Json::F64(r.total_ns())));
        Json::Obj(pairs)
    };
    let tenants = tenant_aggregates(reqs)
        .into_iter()
        .map(|agg| {
            let mut pairs = vec![
                ("tenant".to_string(), Json::U64(agg.tenant)),
                ("count".to_string(), Json::U64(agg.count)),
            ];
            for (name, dur) in PHASES.iter().zip(agg.phase_mean_ns) {
                pairs.push((format!("mean_{name}_ns"), Json::F64(dur)));
            }
            pairs.push(("p50_ns".to_string(), Json::F64(agg.p50_ns)));
            pairs.push(("p95_ns".to_string(), Json::F64(agg.p95_ns)));
            Json::Obj(pairs)
        })
        .collect();
    let mut slowest: Vec<&RequestSummary> = reqs.iter().collect();
    slowest.sort_by(|a, b| f64::total_cmp(&b.total_ns(), &a.total_ns()));
    slowest.truncate(10);
    vec![
        ("file".to_string(), Json::Str(path.to_string())),
        ("requests".to_string(), Json::U64(reqs.len() as u64)),
        ("tenants".to_string(), Json::Arr(tenants)),
        (
            "slowest".to_string(),
            Json::Arr(slowest.into_iter().map(req_json).collect()),
        ),
    ]
}

// ---------------------------------------------------------------------------
// top
// ---------------------------------------------------------------------------

/// Busy-time leaderboards of one trace.
#[derive(Debug, Clone, Default)]
pub struct TopReport {
    /// `(kernel span name, runs, total busy ns)`, hottest first.
    pub kernels: Vec<(String, u64, f64)>,
    /// `(device, kernel runs, total busy ns)`, hottest first.
    pub devices: Vec<(u64, u64, f64)>,
    /// `(tenant, requests, total end-to-end ns)`, hottest first.
    pub tenants: Vec<(u64, u64, f64)>,
}

/// Computes the leaderboards from kernel (`cat == "kernel"`) spans and the
/// request summaries. Ties break on the key, so the order is deterministic.
pub fn top_report(path: &str, doc: &TraceDoc) -> Result<TopReport, Diagnostic> {
    let mut kernels: Vec<(String, u64, f64)> = Vec::new();
    let mut devices: Vec<(u64, u64, f64)> = Vec::new();
    for span in doc.spans.iter().filter(|s| s.cat == "kernel" && !s.instant) {
        let ns = span.dur_us * 1e3;
        match kernels.iter_mut().find(|(n, _, _)| *n == span.name) {
            Some((_, count, total)) => {
                *count += 1;
                *total += ns;
            }
            None => kernels.push((span.name.clone(), 1, ns)),
        }
        match devices.iter_mut().find(|(d, _, _)| *d == span.pid) {
            Some((_, count, total)) => {
                *count += 1;
                *total += ns;
            }
            None => devices.push((span.pid, 1, ns)),
        }
    }
    let mut tenants: Vec<(u64, u64, f64)> = Vec::new();
    for r in request_summaries(path, doc)? {
        match tenants.iter_mut().find(|(t, _, _)| *t == r.tenant) {
            Some((_, count, total)) => {
                *count += 1;
                *total += r.total_ns();
            }
            None => tenants.push((r.tenant, 1, r.total_ns())),
        }
    }
    kernels.sort_by(|a, b| f64::total_cmp(&b.2, &a.2).then_with(|| a.0.cmp(&b.0)));
    devices.sort_by(|a, b| f64::total_cmp(&b.2, &a.2).then_with(|| a.0.cmp(&b.0)));
    tenants.sort_by(|a, b| f64::total_cmp(&b.2, &a.2).then_with(|| a.0.cmp(&b.0)));
    Ok(TopReport {
        kernels,
        devices,
        tenants,
    })
}

/// Reassembles a kernel's embedded disassembly and renders the indexed
/// instruction listing (the instruction-level annotation behind its
/// spans). Round-trips through `m2ndp_riscv::{assemble, disassemble}`, so
/// a non-canonical embedding is rejected rather than mis-rendered.
///
/// # Errors
/// Returns a [`Diagnostic`] when the embedded text does not assemble or
/// does not round-trip.
pub fn annotate_kernel(info: &KernelInfo) -> Result<String, Diagnostic> {
    let program = m2ndp_riscv::assemble(&info.disassembly).map_err(|e| {
        Diagnostic::error_in(
            format!("kernel {}", info.name),
            format!("embedded disassembly line {}: {}", e.line, e.message),
        )
    })?;
    // Canonical-form check: the round-trip law the toolchain guarantees.
    m2ndp_riscv::disassemble(&program).map_err(|e| {
        Diagnostic::error_in(
            format!("kernel {}", info.name),
            format!("instr {}: {}", e.index, e.message),
        )
    })?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  kernel {} (id {}, {} instrs):",
        info.name,
        info.id,
        program.len()
    );
    for (idx, instr) in program.instrs().iter().enumerate() {
        let _ = writeln!(out, "    {idx:>4}  {instr:?}");
    }
    Ok(out)
}

/// Renders the `top` text report for one file.
pub fn top_text(path: &str, doc: &TraceDoc, top: &TopReport, annotate: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{path}:");
    let _ = writeln!(out, "  hottest kernels (runs, total busy ns):");
    for (name, count, ns) in top.kernels.iter().take(10) {
        let _ = writeln!(out, "    {name:<32} {count:>8} {ns:>14.1}");
    }
    let _ = writeln!(out, "  hottest devices (kernel runs, total busy ns):");
    for (dev, count, ns) in top.devices.iter().take(10) {
        let _ = writeln!(out, "    device {dev:<25} {count:>8} {ns:>14.1}");
    }
    let _ = writeln!(out, "  hottest tenants (requests, total end-to-end ns):");
    for (tenant, count, ns) in top.tenants.iter().take(10) {
        let _ = writeln!(out, "    tenant {tenant:<25} {count:>8} {ns:>14.1}");
    }
    if annotate {
        if let Some(info) = top.kernels.first().and_then(|(name, _, _)| {
            doc.kernels
                .iter()
                .find(|k| name == &format!("kernel {}", k.name))
        }) {
            match annotate_kernel(info) {
                Ok(text) => out.push_str(&text),
                Err(d) => {
                    let _ = writeln!(out, "  (annotation unavailable: {})", d.human());
                }
            }
        } else {
            let _ = writeln!(out, "  (no kernel annotation embedded in this trace)");
        }
    }
    out
}

/// The `top` payload for `--format json`.
pub fn top_payload(path: &str, top: &TopReport) -> Vec<(String, Json)> {
    let triple = |key: &str, name: Json, count: u64, ns: f64| {
        Json::Obj(vec![
            (key.to_string(), name),
            ("count".to_string(), Json::U64(count)),
            ("total_ns".to_string(), Json::F64(ns)),
        ])
    };
    vec![
        ("file".to_string(), Json::Str(path.to_string())),
        (
            "kernels".to_string(),
            Json::Arr(
                top.kernels
                    .iter()
                    .map(|(n, c, ns)| triple("name", Json::Str(n.clone()), *c, *ns))
                    .collect(),
            ),
        ),
        (
            "devices".to_string(),
            Json::Arr(
                top.devices
                    .iter()
                    .map(|(d, c, ns)| triple("device", Json::U64(*d), *c, *ns))
                    .collect(),
            ),
        ),
        (
            "tenants".to_string(),
            Json::Arr(
                top.tenants
                    .iter()
                    .map(|(t, c, ns)| triple("tenant", Json::U64(*t), *c, *ns))
                    .collect(),
            ),
        ),
    ]
}

// ---------------------------------------------------------------------------
// export
// ---------------------------------------------------------------------------

/// Runs a tiny deterministic traced serving demo (the KV-store workload,
/// one Poisson and one bursty tenant) and returns its Chrome trace-event
/// JSON. `devices <= 1` serves from a standalone device; larger fleets
/// route every launch through the CXL switch. The same arguments always
/// produce byte-identical JSON — the golden trace snapshot pins this.
pub fn demo_trace(devices: usize, rate_per_sec: f64, requests: usize) -> Json {
    let mut device_cfg = M2ndpConfig::default_device();
    device_cfg.engine.units = 2;
    let mut backend = if devices <= 1 {
        ServeBackend::Device(Box::new(CxlM2ndpDevice::new(device_cfg)))
    } else {
        ServeBackend::Fleet(Box::new(Fleet::new(FleetConfig {
            devices,
            device: device_cfg,
            switch: SwitchConfig::default(),
            hdm_bytes_per_device: 1 << 30,
        })))
    };
    let mut wl = serve::KvServeWorkload::build(&mut backend, 1 << 10, 0.99);
    let cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func).trace(true);
    let gap = 1e9 / (rate_per_sec * 0.3);
    let tenants = vec![
        TenantSpec::poisson("tenantA", rate_per_sec * 0.7)
            .requests((requests * 7 / 10).max(1))
            .seed(0x5EA1),
        TenantSpec::trace("tenantB", vec![0.6 * gap, 1.0 * gap, 1.4 * gap])
            .requests((requests * 3 / 10).max(1))
            .seed(0x5EB2),
    ];
    let report = serve::run(&mut backend, &mut wl, &cfg, &tenants);
    report.chrome_trace()
}

// ---------------------------------------------------------------------------
// CLI driver
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Opts {
    cmd: String,
    files: Vec<String>,
    format: Format,
    annotate: bool,
    devices: usize,
    rate: f64,
    requests: usize,
    out_path: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, CliError> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| fail(USAGE))?.clone();
    let mut opts = Opts {
        cmd,
        files: Vec::new(),
        format: Format::Text,
        annotate: false,
        devices: 1,
        rate: 2e5,
        requests: 20,
        out_path: None,
    };
    let value = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| fail(format!("{flag} expects a value\n{USAGE}")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match value(&mut it, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(fail(format!("unknown format `{other}`\n{USAGE}"))),
                }
            }
            "--annotate" => opts.annotate = true,
            "--devices" => {
                opts.devices = value(&mut it, "--devices")?
                    .parse()
                    .map_err(|_| fail("--devices expects a positive integer"))?;
            }
            "--rate" => {
                opts.rate = value(&mut it, "--rate")?
                    .parse()
                    .map_err(|_| fail("--rate expects a number"))?;
                if opts.rate <= 0.0 || opts.rate.is_nan() {
                    return Err(fail("--rate must be positive"));
                }
            }
            "--requests" => {
                opts.requests = value(&mut it, "--requests")?
                    .parse()
                    .map_err(|_| fail("--requests expects a positive integer"))?;
            }
            "--out" => opts.out_path = Some(value(&mut it, "--out")?),
            other if other.starts_with("--") => {
                return Err(fail(format!("unknown option `{other}`\n{USAGE}")))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    Ok(opts)
}

fn load_doc(path: &str) -> Result<TraceDoc, Diagnostic> {
    let text =
        std::fs::read_to_string(path).map_err(|e| Diagnostic::error_in(path, e.to_string()))?;
    parse_trace(path, &text)
}

/// Runs the CLI on `args` (without the argv\[0\] program name), writing
/// reports to `out`. In `--format json` mode the diagnostics of a failure
/// are written to `out` as the shared machine-readable report *and*
/// returned as the error for stderr.
///
/// # Errors
/// Returns a [`CliError`] on usage mistakes, unreadable or malformed trace
/// files, and schema violations.
pub fn run(args: &[String], out: &mut String) -> Result<(), CliError> {
    let opts = parse_opts(args)?;
    let fail_with = |out: &mut String, d: Diagnostic| {
        if opts.format == Format::Json {
            out.push_str(&report_json(std::slice::from_ref(&d), Vec::new()).pretty());
            out.push('\n');
        }
        fail(d.human())
    };
    match opts.cmd.as_str() {
        "summary" => {
            if opts.files.is_empty() {
                return Err(fail(USAGE));
            }
            for path in &opts.files {
                let doc = load_doc(path).map_err(|d| fail_with(out, d))?;
                let reqs = request_summaries(path, &doc).map_err(|d| fail_with(out, d))?;
                match opts.format {
                    Format::Text => out.push_str(&summary_text(path, &reqs)),
                    Format::Json => {
                        out.push_str(&report_json(&[], summary_payload(path, &reqs)).pretty());
                        out.push('\n');
                    }
                }
            }
            Ok(())
        }
        "top" => {
            if opts.files.is_empty() {
                return Err(fail(USAGE));
            }
            for path in &opts.files {
                let doc = load_doc(path).map_err(|d| fail_with(out, d))?;
                let top = top_report(path, &doc).map_err(|d| fail_with(out, d))?;
                match opts.format {
                    Format::Text => out.push_str(&top_text(path, &doc, &top, opts.annotate)),
                    Format::Json => {
                        out.push_str(&report_json(&[], top_payload(path, &top)).pretty());
                        out.push('\n');
                    }
                }
            }
            Ok(())
        }
        "export" => {
            if !opts.files.is_empty() {
                return Err(fail(format!(
                    "export takes no positional arguments\n{USAGE}"
                )));
            }
            let json = demo_trace(opts.devices, opts.rate, opts.requests);
            let text = json.pretty() + "\n";
            match &opts.out_path {
                Some(path) => {
                    std::fs::write(path, &text).map_err(|e| fail(format!("{path}: {e}")))?
                }
                None => out.push_str(&text),
            }
            Ok(())
        }
        other => Err(fail(format!("unknown subcommand `{other}`\n{USAGE}"))),
    }
}

/// Convenience for `main`: run and translate to an exit code, printing to
/// the real stdout/stderr.
pub fn main_impl(args: Vec<String>) -> i32 {
    let mut out = String::new();
    match run(&args, &mut out) {
        Ok(()) => {
            print!("{out}");
            0
        }
        Err(e) => {
            print!("{out}");
            eprintln!("{e}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_doc() -> TraceDoc {
        let json = demo_trace(1, 2e5, 10);
        parse_trace("demo", &json.pretty()).expect("demo trace validates")
    }

    #[test]
    fn demo_trace_is_deterministic() {
        assert_eq!(
            demo_trace(1, 2e5, 8).pretty(),
            demo_trace(1, 2e5, 8).pretty()
        );
    }

    #[test]
    fn summary_phases_sum_to_end_to_end() {
        let doc = demo_doc();
        let reqs = request_summaries("demo", &doc).unwrap();
        assert_eq!(reqs.len(), 10);
        for r in &reqs {
            let sum: f64 = r.phases.iter().sum();
            assert!((sum - r.total_ns()).abs() <= f64::EPSILON * sum.abs().max(1.0));
            assert!(r.total_ns() > 0.0, "{r:?}");
        }
    }

    #[test]
    fn top_finds_the_kv_kernel_and_annotates_it() {
        let doc = demo_doc();
        let top = top_report("demo", &doc).unwrap();
        assert!(!top.kernels.is_empty());
        assert_eq!(top.tenants.len(), 2);
        let text = top_text("demo", &doc, &top, true);
        assert!(text.contains("hottest kernels"), "{text}");
        assert!(text.contains("instrs):"), "annotation missing: {text}");
    }

    #[test]
    fn cli_summary_json_reports_ok() {
        let dir = std::env::temp_dir().join("m2ndp-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("demo.trace.json");
        std::fs::write(&p, demo_trace(1, 2e5, 6).pretty() + "\n").unwrap();
        let mut out = String::new();
        run(
            &[
                "summary".to_string(),
                p.display().to_string(),
                "--format".to_string(),
                "json".to_string(),
            ],
            &mut out,
        )
        .unwrap();
        let json = Json::parse(&out).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert!(json.get("requests").and_then(Json::as_f64).unwrap() >= 2.0);
    }

    #[test]
    fn malformed_trace_yields_shared_diagnostics_shape() {
        let dir = std::env::temp_dir().join("m2ndp-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.trace.json");
        std::fs::write(&p, "{\"notTraceEvents\": []}\n").unwrap();
        let mut out = String::new();
        let err = run(
            &[
                "summary".to_string(),
                p.display().to_string(),
                "--format".to_string(),
                "json".to_string(),
            ],
            &mut out,
        )
        .unwrap_err();
        assert!(err.message.contains("traceEvents"), "{err}");
        let json = Json::parse(&out).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
    }
}
