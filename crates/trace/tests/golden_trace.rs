//! Golden-file snapshot of the tiny traced serving demo's Chrome
//! trace-event (Perfetto) export.
//!
//! The demo run is fully deterministic, so its export is pinned
//! byte-for-byte under `tests/golden/demo.trace.json`. A diff means the
//! observability layer changed what it records, when it stamps events, or
//! how the exporter serializes them — all of which deserve review.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p m2ndp_trace --test golden_trace
//! ```
//!
//! then review the diff like any other source change.

use std::path::PathBuf;

use m2ndp_trace::{demo_trace, parse_trace, request_summaries};

const DEVICES: usize = 1;
const RATE: f64 = 2e5;
const REQUESTS: usize = 12;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/demo.trace.json")
}

fn render() -> String {
    demo_trace(DEVICES, RATE, REQUESTS).pretty() + "\n"
}

#[test]
fn demo_trace_matches_golden_snapshot() {
    let text = render();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 \
             cargo test -p m2ndp_trace --test golden_trace",
            path.display()
        )
    });
    assert!(
        golden == text,
        "traced-serve export drifted from {}; if intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p m2ndp_trace --test golden_trace",
        path.display()
    );
}

#[test]
fn golden_snapshot_validates_and_summarizes() {
    // The committed snapshot itself must stay a valid trace whose serve
    // phases partition each request's latency — guarding against a stale
    // or hand-edited golden file.
    let text = std::fs::read_to_string(golden_path()).unwrap_or_else(|_| render());
    let doc = parse_trace("demo.trace.json", &text).expect("golden trace validates");
    let reqs = request_summaries("demo.trace.json", &doc).expect("phases complete");
    assert!(!reqs.is_empty());
    for r in &reqs {
        let sum: f64 = r.phases.iter().sum();
        assert!((sum - r.total_ns()).abs() <= f64::EPSILON * sum.max(1.0));
    }
}
