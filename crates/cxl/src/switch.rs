//! CXL switch with direct peer-to-peer access and the M²NDP-in-switch
//! configuration.
//!
//! CXL 3.0 supports direct P2P: a CXL device can reach the HDM of another
//! device through the switch (§II-B), which M²NDP uses to scale NDP across
//! multiple memories (§III-I). A switch adds one store-and-forward hop in
//! each direction (CXL memory latency "can approach 300 ns" through a
//! switch \[93\], i.e. roughly doubling the port latency). §III-J integrates
//! the NDP logic *into* the switch so NDP throughput can scale independently
//! of capacity, processing data held in passive third-party memories
//! (Fig. 14b).

use m2ndp_sim::{BandwidthGate, Counter, Cycle, Frequency};

/// HDM placement granularity across devices behind a switch: 2 MB pages
/// (§IV-A assumes page-granularity placement as in NUMA/multi-GPU systems;
/// matches the device's 2 MB translation pages).
pub const HDM_PAGE_BYTES: u64 = 2 << 20;

/// Switch parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchConfig {
    /// Number of downstream device ports.
    pub device_ports: usize,
    /// Per-port, per-direction bandwidth in bytes/second (a CXL 3.0 ×8
    /// port, 64 GB/s).
    pub port_bw_bytes_per_sec: f64,
    /// Added one-way latency for traversing the switch, nanoseconds
    /// (~70 ns: a second protocol-stack crossing, per Fig. 2 / \[93\]).
    pub traversal_ns: f64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        Self {
            device_ports: 8,
            port_bw_bytes_per_sec: 64e9,
            traversal_ns: 70.0,
        }
    }
}

/// Routing decision for an address across the devices behind a switch.
///
/// Each 2 MB page lives wholly in one CXL memory (§IV-A assumes page-
/// granularity placement as in NUMA/multi-GPU systems).
#[derive(Debug, Clone)]
pub struct HdmRouter {
    device_spans: Vec<(u64, u64)>, // (base, bound) per device
}

impl HdmRouter {
    /// Splits `total_bytes` of HDM evenly across `devices`, starting at
    /// `base`.
    pub fn even(base: u64, total_bytes: u64, devices: usize) -> Self {
        assert!(devices > 0);
        let per = total_bytes / devices as u64;
        let device_spans = (0..devices as u64)
            .map(|d| (base + d * per, base + (d + 1) * per))
            .collect();
        Self { device_spans }
    }

    /// Splits HDM across `devices` at [`HDM_PAGE_BYTES`] granularity:
    /// `bytes_per_device` is rounded **up** to a whole number of 2 MB pages
    /// so every span is page-aligned and every page lives wholly in one
    /// device.
    ///
    /// # Panics
    /// Panics if `base` is not page-aligned or `devices == 0`.
    pub fn even_pages(base: u64, bytes_per_device: u64, devices: usize) -> Self {
        assert!(devices > 0);
        assert_eq!(
            base % HDM_PAGE_BYTES,
            0,
            "HDM base must be 2 MB page-aligned"
        );
        let per = bytes_per_device.div_ceil(HDM_PAGE_BYTES).max(1) * HDM_PAGE_BYTES;
        let device_spans = (0..devices as u64)
            .map(|d| (base + d * per, base + (d + 1) * per))
            .collect();
        Self { device_spans }
    }

    /// The device an address routes to, if any.
    pub fn device_of(&self, addr: u64) -> Option<usize> {
        self.device_spans
            .iter()
            .position(|(b, e)| (*b..*e).contains(&addr))
    }

    /// The owning device plus the address's offset within that device's
    /// span (how a fleet-global HDM address rebases into device-local
    /// memory).
    pub fn local_offset(&self, addr: u64) -> Option<(usize, u64)> {
        let d = self.device_of(addr)?;
        Some((d, addr - self.device_spans[d].0))
    }

    /// The global 2 MB page index of an address inside the routed HDM.
    pub fn page_of(&self, addr: u64) -> Option<u64> {
        let (first, _) = *self.device_spans.first()?;
        self.device_of(addr)
            .map(|_| (addr - first) / HDM_PAGE_BYTES)
    }

    /// The full `[base, bound)` span the router covers.
    pub fn total_span(&self) -> (u64, u64) {
        let first = self.device_spans.first().map_or(0, |s| s.0);
        let last = self.device_spans.last().map_or(0, |s| s.1);
        (first, last)
    }

    /// The address span of one device.
    pub fn span(&self, device: usize) -> (u64, u64) {
        self.device_spans[device]
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.device_spans.len()
    }
}

/// The switch fabric: per-port bandwidth gates and traversal latency.
#[derive(Debug)]
pub struct CxlSwitch {
    /// Per-device-port gates, one per direction: (to_device, from_device).
    ports: Vec<(BandwidthGate, BandwidthGate)>,
    /// Host (upstream) port gates: (host_to_switch, switch_to_host).
    host_port: (BandwidthGate, BandwidthGate),
    traversal: Cycle,
    /// P2P transfers forwarded.
    pub p2p_transfers: Counter,
    /// P2P payload bytes forwarded.
    pub p2p_bytes: Counter,
    /// Host transfers forwarded.
    pub host_transfers: Counter,
}

impl CxlSwitch {
    /// Builds a switch in the `clock` domain.
    pub fn new(config: SwitchConfig, clock: Frequency) -> Self {
        let bpc = clock.bytes_per_cycle(config.port_bw_bytes_per_sec);
        Self {
            ports: (0..config.device_ports)
                .map(|_| (BandwidthGate::new(bpc), BandwidthGate::new(bpc)))
                .collect(),
            host_port: (BandwidthGate::new(bpc), BandwidthGate::new(bpc)),
            traversal: clock.cycles_from_ns(config.traversal_ns),
            p2p_transfers: Counter::new(),
            p2p_bytes: Counter::new(),
            host_transfers: Counter::new(),
        }
    }

    /// Forwards `bytes` from the host port to device port `dst`; returns the
    /// delivery cycle.
    pub fn host_to_device(&mut self, now: Cycle, dst: usize, bytes: u32) -> Cycle {
        let t = self.host_port.0.send(now, bytes as u64);
        let t = self.ports[dst].0.send(t, bytes as u64);
        self.host_transfers.inc();
        t + self.traversal
    }

    /// Forwards `bytes` from the host port to device port `dst` for
    /// traffic streams simulated **out of chronological order** (a fleet
    /// runs its devices one after another, so a later-simulated device's
    /// offloads carry earlier timestamps than an earlier-simulated
    /// device's). Charges the host port's serialization *delay* and the
    /// destination port's gate — whose timestamps are monotone per device —
    /// without advancing the shared host-port gate clock, so an
    /// earlier-timestamped send is not spuriously queued behind a
    /// later-timestamped one.
    pub fn host_to_device_unordered(&mut self, now: Cycle, dst: usize, bytes: u32) -> Cycle {
        let hbpc = self.host_port.0.bytes_per_cycle();
        let t = unordered_host_hop(&mut self.ports[dst].0, hbpc, self.traversal, now, bytes);
        self.host_transfers.inc();
        t
    }

    /// Splits the switch into per-device host→device lanes so independent
    /// shard simulations can charge their own launch stores concurrently
    /// (the fleet's shard-parallel execution core). Each [`HostLane`] owns
    /// its port's `to_device` gate exclusively and counts its transfers
    /// locally; fold the counts back with
    /// [`Self::absorb_host_transfers`] once the lanes are dropped. One lane
    /// per device port, in port order.
    pub fn host_lanes(&mut self) -> Vec<HostLane<'_>> {
        let host_bytes_per_cycle = self.host_port.0.bytes_per_cycle();
        let traversal = self.traversal;
        self.ports
            .iter_mut()
            .map(|(to_device, _)| HostLane {
                to_device,
                host_bytes_per_cycle,
                traversal,
                transfers: 0,
            })
            .collect()
    }

    /// Folds shard-local lane transfer counts (see [`Self::host_lanes`])
    /// back into the shared `host_transfers` counter. Addition commutes, so
    /// the fold is order-independent and the merged counter matches a
    /// serial run exactly.
    pub fn absorb_host_transfers(&mut self, transfers: u64) {
        self.host_transfers.add(transfers);
    }

    /// Forwards `bytes` from device port `src` to the host; returns the
    /// delivery cycle.
    pub fn device_to_host(&mut self, now: Cycle, src: usize, bytes: u32) -> Cycle {
        let t = self.ports[src].1.send(now, bytes as u64);
        let t = self.host_port.1.send(t, bytes as u64);
        self.host_transfers.inc();
        t + self.traversal
    }

    /// Direct P2P: forwards `bytes` from device `src` to device `dst`
    /// without touching the host port.
    pub fn peer_to_peer(&mut self, now: Cycle, src: usize, dst: usize, bytes: u32) -> Cycle {
        let t = self.ports[src].1.send(now, bytes as u64);
        let t = self.ports[dst].0.send(t, bytes as u64);
        self.p2p_transfers.inc();
        self.p2p_bytes.add(bytes as u64);
        t + self.traversal
    }

    /// Ring all-reduce across the first `devices` ports as **actual switch
    /// traffic**: `2(n-1)` lock-step rounds, each device forwarding a
    /// `bytes_per_device / n` chunk to its ring successor via direct P2P.
    /// All ports transfer concurrently within a round (reduce-scatter then
    /// all-gather); a round completes when its slowest transfer lands, and
    /// the next round starts only after a device has *received* the
    /// previous chunk. Large chunks are segmented at 2 MB page granularity
    /// (the HDM placement unit) so the `u32` packet-size domain is never
    /// exceeded. Returns the cycle the all-reduce completes; the per-port
    /// gates and P2P counters record the traffic.
    pub fn ring_allreduce(&mut self, start: Cycle, devices: usize, bytes_per_device: u64) -> Cycle {
        let n = devices.min(self.device_ports());
        if n <= 1 || bytes_per_device == 0 {
            return start;
        }
        let chunk = (bytes_per_device / n as u64).max(1);
        // Cycle each device becomes ready to send (initially: compute done).
        let mut ready = vec![start; n];
        for _round in 0..2 * (n - 1) {
            let mut next = ready.clone();
            for (src, &ready_at) in ready.iter().enumerate() {
                let dst = (src + 1) % n;
                let mut t = ready_at;
                let mut remaining = chunk;
                while remaining > 0 {
                    let seg = remaining.min(HDM_PAGE_BYTES) as u32;
                    t = self.peer_to_peer(t, src, dst, seg);
                    remaining -= seg as u64;
                }
                // The successor may start its next round once the chunk
                // has fully arrived.
                next[dst] = next[dst].max(t);
            }
            ready = next;
        }
        ready.into_iter().max().unwrap_or(start)
    }

    /// Bytes that have crossed one device port: `(to_device, from_device)`.
    pub fn port_bytes(&self, port: usize) -> (u64, u64) {
        (
            self.ports[port].0.total_bytes(),
            self.ports[port].1.total_bytes(),
        )
    }

    /// Traversal latency in cycles.
    pub fn traversal_cycles(&self) -> Cycle {
        self.traversal
    }

    /// Number of device ports.
    pub fn device_ports(&self) -> usize {
        self.ports.len()
    }
}

/// The unordered host→device hop shared by [`CxlSwitch::host_to_device_unordered`]
/// and [`HostLane::host_to_device_unordered`]: the host port contributes
/// its serialization *delay* without advancing the shared gate clock, the
/// destination port's gate is charged for real, and one traversal is added.
fn unordered_host_hop(
    to_device: &mut BandwidthGate,
    host_bytes_per_cycle: f64,
    traversal: Cycle,
    now: Cycle,
    bytes: u32,
) -> Cycle {
    let ser = (f64::from(bytes) / host_bytes_per_cycle).ceil() as Cycle;
    to_device.send(now + ser, bytes as u64) + traversal
}

/// One device port's host→device lane, split out of the switch with
/// [`CxlSwitch::host_lanes`] so per-device shard simulations can run
/// concurrently: the lane owns the port's `to_device` [`BandwidthGate`]
/// exclusively (per-port state — no cross-device coupling) and accumulates
/// its transfer count locally instead of touching the switch's shared
/// counters.
#[derive(Debug)]
pub struct HostLane<'a> {
    to_device: &'a mut BandwidthGate,
    host_bytes_per_cycle: f64,
    traversal: Cycle,
    transfers: u64,
}

impl HostLane<'_> {
    /// [`CxlSwitch::host_to_device_unordered`] for this lane's port: same
    /// math, same result cycle, but safe to call from the shard that owns
    /// the lane while sibling shards charge theirs.
    pub fn host_to_device_unordered(&mut self, now: Cycle, bytes: u32) -> Cycle {
        let t = unordered_host_hop(
            self.to_device,
            self.host_bytes_per_cycle,
            self.traversal,
            now,
            bytes,
        );
        self.transfers += 1;
        t
    }

    /// Host transfers charged through this lane so far (what
    /// [`CxlSwitch::absorb_host_transfers`] expects back).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch() -> CxlSwitch {
        CxlSwitch::new(SwitchConfig::default(), Frequency::ghz(2.0))
    }

    #[test]
    fn traversal_latency_applied() {
        let mut s = switch();
        let t = s.host_to_device(0, 0, 64);
        // 64 B at 32 B/cycle through two gates + 140-cycle traversal.
        assert_eq!(t, 4 + 140);
    }

    #[test]
    fn p2p_does_not_touch_host_port() {
        let mut s = switch();
        // Saturate device ports 0->1 with P2P...
        for _ in 0..100 {
            s.peer_to_peer(0, 0, 1, 256);
        }
        // ...host port is still immediately available.
        let t = s.host_to_device(0, 2, 64);
        assert_eq!(t, 4 + 140);
        assert_eq!(s.p2p_transfers.get(), 100);
    }

    #[test]
    fn per_port_bandwidth_isolates_devices() {
        let mut s = switch();
        let busy = s.host_to_device(0, 0, 4096); // occupies port 0 for a while
        let other = s.host_to_device(0, 1, 64);
        assert!(other < busy, "port 1 should not wait behind port 0");
    }

    #[test]
    fn host_lanes_match_the_unordered_switch_path() {
        // The same stream of unordered launch stores, once through the
        // switch method and once through split lanes, must produce
        // identical delivery cycles, gate state, and transfer counts.
        let mut reference = switch();
        let mut split = switch();
        let stream = [(0usize, 5u64, 80u32), (1, 9, 80), (0, 40, 256), (2, 7, 64)];
        let expected: Vec<Cycle> = stream
            .iter()
            .map(|&(dst, now, bytes)| reference.host_to_device_unordered(now, dst, bytes))
            .collect();
        let mut got = Vec::new();
        let mut lanes = split.host_lanes();
        for &(dst, now, bytes) in &stream {
            got.push(lanes[dst].host_to_device_unordered(now, bytes));
        }
        let transfers: u64 = lanes.iter().map(HostLane::transfers).sum();
        drop(lanes);
        split.absorb_host_transfers(transfers);
        assert_eq!(got, expected);
        assert_eq!(split.host_transfers.get(), reference.host_transfers.get());
        for p in 0..3 {
            assert_eq!(split.port_bytes(p), reference.port_bytes(p), "port {p}");
        }
    }

    #[test]
    fn router_partitions_evenly() {
        let r = HdmRouter::even(0x1_0000_0000, 8 << 30, 8);
        assert_eq!(r.devices(), 8);
        assert_eq!(r.device_of(0x1_0000_0000), Some(0));
        assert_eq!(r.device_of(0x1_0000_0000 + (1 << 30)), Some(1));
        assert_eq!(r.device_of(0x1_0000_0000 + (8u64 << 30) - 1), Some(7));
        assert_eq!(r.device_of(0x0), None);
    }

    #[test]
    fn ring_allreduce_moves_real_traffic() {
        let mut s = switch();
        let done = s.ring_allreduce(1000, 4, 1 << 20);
        assert!(done > 1000);
        // 2(n-1) rounds × n ports × chunk bytes.
        assert_eq!(s.p2p_bytes.get(), 6 * 4 * (1 << 18));
        assert_eq!(s.p2p_transfers.get(), 24);
        // Every participating port moved the same bytes in each direction.
        for p in 0..4 {
            assert_eq!(s.port_bytes(p), (6 << 18, 6 << 18));
        }
        assert_eq!(s.port_bytes(5), (0, 0));
    }

    #[test]
    fn ring_allreduce_single_device_is_free() {
        let mut s = switch();
        assert_eq!(s.ring_allreduce(42, 1, 1 << 20), 42);
        assert_eq!(s.ring_allreduce(42, 4, 0), 42);
        assert_eq!(s.p2p_transfers.get(), 0);
    }

    #[test]
    fn ring_allreduce_cost_grows_with_devices() {
        let cost = |n: usize| {
            let mut s = switch();
            s.ring_allreduce(0, n, 8 << 20) // 8 MB per device
        };
        assert!(cost(8) > cost(2), "{} vs {}", cost(8), cost(2));
    }

    #[test]
    fn page_router_aligns_and_translates() {
        let r = HdmRouter::even_pages(0, 3 << 20, 4); // rounds up to 4 MB
        for d in 0..4 {
            let (b, e) = r.span(d);
            assert_eq!(b % HDM_PAGE_BYTES, 0);
            assert_eq!(e - b, 4 << 20);
        }
        assert_eq!(r.local_offset(5 << 20), Some((1, 1 << 20)));
        assert_eq!(r.page_of(5 << 20), Some(2));
        assert_eq!(r.total_span(), (0, 16 << 20));
        assert_eq!(r.local_offset(16 << 20), None);
    }

    #[test]
    fn router_spans_are_contiguous() {
        let r = HdmRouter::even(0, 4096, 4);
        for d in 0..4 {
            let (b, e) = r.span(d);
            assert_eq!(e - b, 1024);
            assert_eq!(r.device_of(b), Some(d));
            assert_eq!(r.device_of(e - 1), Some(d));
        }
    }
}
