//! CXL.io / PCIe cost model (§II-C, Fig. 5).
//!
//! CXL.io is required for device management and is the conventional path for
//! computation offloading. Its latencies are µs-scale: the ring-buffer
//! scheme costs multiple link round-trips plus kernel-mode transitions, and
//! a DMA takes ≥1 µs \[61\]. The evaluation parameterizes the one-way CXL.io
//! latency `y` ≈ 500 ns (from the ~1 µs DMA) and charges:
//!
//! * ring buffer: `8y` of communication around a kernel (5y before, 3y
//!   after — doorbell, command fetch, launch + repeated error check,
//!   completion), ~4 µs total (§IV-A);
//! * direct MMIO: `3y` (y before, 2y after), ~1.5 µs total, but only one
//!   outstanding kernel since the device registers must not be overwritten.

use m2ndp_sim::{Cycle, Frequency};

/// CXL.io/PCIe latency model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlIoModel {
    /// One-way CXL.io latency in nanoseconds (Fig. 5's `y`, default 500 ns).
    pub one_way_ns: f64,
    /// DMA setup + completion overhead in nanoseconds (≥1 µs \[61\]).
    pub dma_overhead_ns: f64,
    /// Sustained DMA bandwidth in bytes/second (shares the PCIe PHY).
    pub dma_bw_bytes_per_sec: f64,
}

impl Default for CxlIoModel {
    fn default() -> Self {
        Self {
            one_way_ns: 500.0,
            dma_overhead_ns: 1000.0,
            dma_bw_bytes_per_sec: 64e9,
        }
    }
}

impl CxlIoModel {
    /// Creates the default model with a custom one-way latency (Fig. 11b
    /// equalizes it with CXL.mem at 600 ns LtU → 300 ns one-way).
    pub fn with_one_way_ns(one_way_ns: f64) -> Self {
        Self {
            one_way_ns,
            ..Self::default()
        }
    }

    /// Host-side overhead before a ring-buffer-launched kernel starts:
    /// user-buffer write, doorbell update, device DMA of the pointer and the
    /// command (Fig. 5b: 5y).
    pub fn ring_buffer_pre_ns(&self) -> f64 {
        5.0 * self.one_way_ns
    }

    /// Overhead after kernel completion before the host observes it with the
    /// repeated launch-and-error-check protocol (Fig. 5b: 3y).
    pub fn ring_buffer_post_ns(&self) -> f64 {
        3.0 * self.one_way_ns
    }

    /// Total ring-buffer communication overhead around one kernel (~4 µs at
    /// the default y).
    pub fn ring_buffer_total_ns(&self) -> f64 {
        self.ring_buffer_pre_ns() + self.ring_buffer_post_ns()
    }

    /// Overhead before a direct-MMIO-launched kernel starts (Fig. 5c: y).
    pub fn direct_pre_ns(&self) -> f64 {
        self.one_way_ns
    }

    /// Overhead after completion for direct MMIO: the host polls the device
    /// register over CXL.io (Fig. 5c: 2y).
    pub fn direct_post_ns(&self) -> f64 {
        2.0 * self.one_way_ns
    }

    /// Total direct-MMIO overhead (~1.5 µs at the default y).
    pub fn direct_total_ns(&self) -> f64 {
        self.direct_pre_ns() + self.direct_post_ns()
    }

    /// Latency of a DMA transfer of `bytes`.
    pub fn dma_ns(&self, bytes: u64) -> f64 {
        self.dma_overhead_ns + bytes as f64 / self.dma_bw_bytes_per_sec * 1e9
    }

    /// Converts an overhead in ns to cycles of `clock`.
    pub fn to_cycles(&self, ns: f64, clock: Frequency) -> Cycle {
        clock.cycles_from_ns(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_evaluation_constants() {
        let io = CxlIoModel::default();
        // §IV-A: ring buffer 4 µs, direct MMIO 1.5 µs.
        assert!((io.ring_buffer_total_ns() - 4000.0).abs() < 1e-9);
        assert!((io.direct_total_ns() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn dma_includes_fixed_overhead() {
        let io = CxlIoModel::default();
        assert!(io.dma_ns(0) >= 1000.0);
        // 64 KB at 64 GB/s = 1 µs of transfer.
        assert!((io.dma_ns(65536) - 2024.0).abs() < 1.0);
    }

    #[test]
    fn fig5_split_is_5y_3y() {
        let io = CxlIoModel::with_one_way_ns(100.0);
        assert_eq!(io.ring_buffer_pre_ns(), 500.0);
        assert_eq!(io.ring_buffer_post_ns(), 300.0);
        assert_eq!(io.direct_pre_ns(), 100.0);
        assert_eq!(io.direct_post_ns(), 200.0);
    }

    #[test]
    fn cycle_conversion() {
        let io = CxlIoModel::default();
        assert_eq!(io.to_cycles(1500.0, Frequency::ghz(2.0)), 3000);
    }
}
