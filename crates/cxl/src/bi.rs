//! Back-invalidation (HDM-DB device coherence) model.
//!
//! With the HDM-DB model the device tracks host caching of its memory with a
//! snoop filter and back-invalidates (BI) the host cache when an NDP access
//! touches a line the host holds dirty (§II-B). The paper's limit study
//! (Fig. 13b) assumes a fraction of the kernel's data is dirty in the host
//! cache; each NDP read of such a line costs a BI round trip over the link,
//! and the data is supplied from the host — which, when the device DRAM is
//! saturated, partially *offsets* the cost by adding link bandwidth.
//!
//! The dirty-line decision is a deterministic hash of the line address so
//! runs are reproducible and exactly `dirty_ratio` of lines (in expectation)
//! are affected regardless of access order.

use m2ndp_sim::{Counter, Cycle, Frequency};

/// Back-invalidation model for one device.
#[derive(Debug, Clone)]
pub struct BackInvalidation {
    /// Fraction of kernel data lines dirty in the host cache (0.0–1.0).
    dirty_ratio: f64,
    /// BI round-trip latency in device cycles (snoop to host + response).
    rtt_cycles: Cycle,
    /// BI snoops issued.
    pub snoops: Counter,
    /// Lines supplied by the host after a BI hit.
    pub host_supplied: Counter,
}

impl BackInvalidation {
    /// Creates the model. `link_one_way_ns` is the CXL.mem one-way latency;
    /// a BI costs a full round trip plus host-cache handling (~20 ns).
    ///
    /// # Panics
    /// Panics unless `0.0 <= dirty_ratio <= 1.0`.
    pub fn new(dirty_ratio: f64, link_one_way_ns: f64, clock: Frequency) -> Self {
        assert!(
            (0.0..=1.0).contains(&dirty_ratio),
            "dirty ratio must be a fraction"
        );
        Self {
            dirty_ratio,
            rtt_cycles: clock.cycles_from_ns(2.0 * link_one_way_ns + 20.0),
            snoops: Counter::new(),
            host_supplied: Counter::new(),
        }
    }

    /// A model with no dirty lines (the paper's default assumption: hosts do
    /// not mutate NDP kernel data such as model weights during inference).
    pub fn clean(clock: Frequency) -> Self {
        Self::new(0.0, 75.0, clock)
    }

    fn line_is_dirty(&self, line_addr: u64) -> bool {
        if self.dirty_ratio <= 0.0 {
            return false;
        }
        if self.dirty_ratio >= 1.0 {
            return true;
        }
        // SplitMix64 finalizer: uniform, deterministic per line.
        let mut x = line_addr >> 6;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) < self.dirty_ratio
    }

    /// Checks an NDP access to `addr`: returns the added latency (0 for
    /// clean lines) and whether the host supplies the data over the link.
    pub fn on_device_access(&mut self, addr: u64) -> BiOutcome {
        if self.line_is_dirty(addr) {
            self.snoops.inc();
            self.host_supplied.inc();
            BiOutcome {
                extra_latency: self.rtt_cycles,
                host_supplies_data: true,
            }
        } else {
            BiOutcome {
                extra_latency: 0,
                host_supplies_data: false,
            }
        }
    }

    /// The configured dirty fraction.
    pub fn dirty_ratio(&self) -> f64 {
        self.dirty_ratio
    }
}

/// Result of a BI check for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiOutcome {
    /// Latency added to the access, in device cycles.
    pub extra_latency: Cycle,
    /// Whether the cacheline is supplied by the host over the CXL link
    /// (adding link traffic but relieving device DRAM).
    pub host_supplies_data: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_model_never_snoops() {
        let mut bi = BackInvalidation::clean(Frequency::ghz(2.0));
        for a in (0..100_000u64).step_by(64) {
            assert_eq!(bi.on_device_access(a).extra_latency, 0);
        }
        assert_eq!(bi.snoops.get(), 0);
    }

    #[test]
    fn all_dirty_always_snoops() {
        let mut bi = BackInvalidation::new(1.0, 75.0, Frequency::ghz(2.0));
        let o = bi.on_device_access(0x1000);
        assert!(o.extra_latency > 0);
        assert!(o.host_supplies_data);
    }

    #[test]
    fn dirty_fraction_is_respected() {
        let mut bi = BackInvalidation::new(0.4, 75.0, Frequency::ghz(2.0));
        let n = 50_000u64;
        let mut dirty = 0;
        for i in 0..n {
            if bi.on_device_access(i * 64).host_supplies_data {
                dirty += 1;
            }
        }
        let frac = dirty as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.02, "observed dirty fraction {frac}");
    }

    #[test]
    fn decision_is_per_line_deterministic() {
        let mut a = BackInvalidation::new(0.5, 75.0, Frequency::ghz(2.0));
        let mut b = BackInvalidation::new(0.5, 75.0, Frequency::ghz(2.0));
        for i in 0..1000u64 {
            assert_eq!(
                a.on_device_access(i * 64).host_supplies_data,
                b.on_device_access(i * 64).host_supplies_data
            );
        }
        // Same line, same answer (offsets within the line too).
        let x = a.on_device_access(0x40).host_supplies_data;
        let y = a.on_device_access(0x60).host_supplies_data;
        assert_eq!(x, y);
    }

    #[test]
    fn rtt_reflects_link_latency() {
        let bi = BackInvalidation::new(1.0, 75.0, Frequency::ghz(2.0));
        // 2*75 + 20 ns = 170 ns = 340 cycles.
        assert_eq!(bi.rtt_cycles, 340);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn out_of_range_ratio_rejected() {
        let _ = BackInvalidation::new(1.5, 75.0, Frequency::ghz(2.0));
    }
}
