//! CXL interconnect models: CXL.mem links, CXL.io transactions, the M²func
//! packet filter, back-invalidation, and the CXL switch.
//!
//! The reproduction models the protocol pieces §II-B/§II-C and §III rely on:
//!
//! * [`CxlLink`] — a CXL.mem port pair with per-direction bandwidth
//!   (64 GB/s from CXL 3.0 / PCIe 6.0 ×8, Table IV) and a one-way latency
//!   parameterized from the load-to-use figures (150/300/600 ns LtU);
//! * [`packet`] — CXL.mem message types (M2S Req/RwD, S2M DRS/NDR, BI
//!   channels) with wire sizes for bandwidth accounting;
//! * [`CxlIoModel`] — the µs-scale CXL.io/PCIe cost model for ring-buffer
//!   and direct-MMIO offloading (Fig. 5) and for DMA;
//! * [`PacketFilter`] — the M²func enabler at the device ingress: an
//!   18 B/process {base, bound, ASID} table that classifies incoming
//!   CXL.mem packets as normal accesses or M²func calls (§III-B);
//! * [`BackInvalidation`] — the HDM-DB device-coherence model used by the
//!   dirty-host-cache limit study (Fig. 13b);
//! * [`CxlSwitch`] — multi-device routing with direct P2P (§II-B) and the
//!   M²NDP-in-switch configuration (§III-J, Fig. 14b).

#![warn(missing_docs)]

pub mod bi;
pub mod filter;
pub mod io;
pub mod link;
pub mod packet;
pub mod switch;

pub use bi::BackInvalidation;
pub use filter::{FilterEntry, PacketFilter};
pub use io::CxlIoModel;
pub use link::{CxlLink, CxlLinkConfig};
pub use packet::{CxlMemPacket, PacketKind};
pub use switch::{CxlSwitch, HdmRouter, HostLane, SwitchConfig, HDM_PAGE_BYTES};
