//! The M²func packet filter (§III-B).
//!
//! A small table at the CXL memory's ingress port holds one
//! {64-bit base, 64-bit bound, 16-bit ASID} entry per host process — 18 B
//! each, so 1024 processes cost 18 KB. Every incoming CXL.mem packet is
//! checked: if its address falls inside a registered M²func region, the
//! packet is interpreted as an NDP management function call (the offset from
//! the region base selects the function, Table II); otherwise it proceeds as
//! a normal memory read/write.
//!
//! Entries are installed through CXL.io by the M²NDP driver when a process
//! initializes (a privileged, one-time operation); afterwards CXL.io is no
//! longer needed.

/// Address-space identifier of a host process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asid(pub u16);

/// One packet-filter entry: the M²func region of one host process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterEntry {
    /// Inclusive base physical address of the region.
    pub base: u64,
    /// Exclusive bound physical address.
    pub bound: u64,
    /// Owning process.
    pub asid: Asid,
}

impl FilterEntry {
    /// Storage footprint in bytes (64-bit base + 64-bit bound + 16-bit ASID
    /// = 18 B, §III-B).
    pub const STORAGE_BYTES: usize = 18;
}

/// A match result: which process's region was hit and at what offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterMatch {
    /// The owning process.
    pub asid: Asid,
    /// Byte offset of the access from the region base.
    pub offset: u64,
}

/// The ingress packet filter.
#[derive(Debug, Clone, Default)]
pub struct PacketFilter {
    entries: Vec<FilterEntry>,
}

impl PacketFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a region (privileged; via CXL.io at init time).
    ///
    /// # Errors
    /// Rejects empty regions and regions overlapping an existing entry.
    pub fn insert(&mut self, entry: FilterEntry) -> Result<(), FilterError> {
        if entry.base >= entry.bound {
            return Err(FilterError::EmptyRegion);
        }
        for e in &self.entries {
            if entry.base < e.bound && e.base < entry.bound {
                return Err(FilterError::Overlap);
            }
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Removes the region owned by `asid`; returns whether one existed.
    pub fn remove(&mut self, asid: Asid) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.asid != asid);
        self.entries.len() != before
    }

    /// Classifies an address: `Some` when it falls in a registered M²func
    /// region.
    pub fn matches(&self, addr: u64) -> Option<FilterMatch> {
        self.entries
            .iter()
            .find(|e| (e.base..e.bound).contains(&addr))
            .map(|e| FilterMatch {
                asid: e.asid,
                offset: addr - e.base,
            })
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total SRAM footprint of the filter in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len() * FilterEntry::STORAGE_BYTES
    }
}

/// Errors installing filter entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterError {
    /// base >= bound.
    EmptyRegion,
    /// The region overlaps an existing entry.
    Overlap,
}

impl std::fmt::Display for FilterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterError::EmptyRegion => write!(f, "filter region is empty"),
            FilterError::Overlap => write!(f, "filter region overlaps an existing entry"),
        }
    }
}

impl std::error::Error for FilterError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, bound: u64, asid: u16) -> FilterEntry {
        FilterEntry {
            base,
            bound,
            asid: Asid(asid),
        }
    }

    #[test]
    fn match_inside_region_reports_offset() {
        let mut f = PacketFilter::new();
        f.insert(entry(0x10000, 0x20000, 0x07)).unwrap();
        let m = f.matches(0x10040).unwrap();
        assert_eq!(m.asid, Asid(0x07));
        assert_eq!(m.offset, 0x40);
    }

    #[test]
    fn no_match_outside_region() {
        let mut f = PacketFilter::new();
        f.insert(entry(0x10000, 0x20000, 1)).unwrap();
        assert!(f.matches(0xFFFF).is_none());
        assert!(f.matches(0x20000).is_none()); // bound is exclusive
        assert!(f.matches(0x10000).is_some()); // base is inclusive
    }

    #[test]
    fn multiple_processes_coexist() {
        let mut f = PacketFilter::new();
        f.insert(entry(0x10000, 0x20000, 0x07)).unwrap();
        f.insert(entry(0x20000, 0x30000, 0x0A)).unwrap();
        assert_eq!(f.matches(0x10000).unwrap().asid, Asid(0x07));
        assert_eq!(f.matches(0x2FFFF).unwrap().asid, Asid(0x0A));
    }

    #[test]
    fn overlap_rejected() {
        let mut f = PacketFilter::new();
        f.insert(entry(0x10000, 0x20000, 1)).unwrap();
        assert_eq!(
            f.insert(entry(0x1F000, 0x21000, 2)),
            Err(FilterError::Overlap)
        );
        assert_eq!(f.insert(entry(0x0, 0x10001, 2)), Err(FilterError::Overlap));
    }

    #[test]
    fn empty_region_rejected() {
        let mut f = PacketFilter::new();
        assert_eq!(
            f.insert(entry(0x10, 0x10, 1)),
            Err(FilterError::EmptyRegion)
        );
    }

    #[test]
    fn remove_frees_the_range() {
        let mut f = PacketFilter::new();
        f.insert(entry(0x10000, 0x20000, 1)).unwrap();
        assert!(f.remove(Asid(1)));
        assert!(!f.remove(Asid(1)));
        assert!(f.matches(0x10000).is_none());
        f.insert(entry(0x10000, 0x20000, 2)).unwrap();
    }

    #[test]
    fn storage_matches_paper_claim() {
        // "18 KB for 1024 processes" (§III-B).
        let mut f = PacketFilter::new();
        for i in 0..1024u64 {
            f.insert(entry(i << 20, (i << 20) + 0x10000, i as u16))
                .unwrap();
        }
        assert_eq!(f.storage_bytes(), 18 * 1024);
    }
}
