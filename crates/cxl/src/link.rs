//! The CXL.mem link: per-direction bandwidth and one-way latency.
//!
//! Table IV: "64 GB/s (in each dir.) from CXL 3.0 (PCIe 6.0) x8, 256 B flit;
//! load-to-use latency 150 ns / 300 ns / 600 ns". Following Fig. 5 the
//! one-way CXL.mem latency `x` is half the load-to-use figure (x = 75 ns for
//! the 150 ns default); the sensitivity studies (Fig. 13a) scale it 2–4×.

use m2ndp_sim::{BandwidthGate, Cycle, DelayPipe, Frequency, TrafficStats};

use crate::packet::CxlMemPacket;

/// Link parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxlLinkConfig {
    /// One-way latency in nanoseconds (75 ns default; Fig. 5's `x`).
    pub one_way_ns: f64,
    /// Bandwidth per direction in bytes/second (64 GB/s).
    pub bw_per_dir_bytes_per_sec: f64,
}

impl CxlLinkConfig {
    /// The default CXL 3.0 ×8 link of Table IV with 150 ns load-to-use.
    pub fn default_150ns() -> Self {
        Self {
            one_way_ns: 75.0,
            bw_per_dir_bytes_per_sec: 64e9,
        }
    }

    /// Scales load-to-use by `factor` (Fig. 13a's 2xLtU / 4xLtU).
    pub fn with_ltu_scale(mut self, factor: f64) -> Self {
        self.one_way_ns *= factor;
        self
    }

    /// The host-observed load-to-use latency this link implies.
    pub fn load_to_use_ns(&self) -> f64 {
        2.0 * self.one_way_ns
    }
}

impl Default for CxlLinkConfig {
    fn default() -> Self {
        Self::default_150ns()
    }
}

/// One direction of the link: serializing bandwidth gate + latency wire.
#[derive(Debug)]
struct Direction {
    gate: BandwidthGate,
    wire: DelayPipe<CxlMemPacket>,
    latency: Cycle,
    stats: TrafficStats,
}

impl Direction {
    fn send(&mut self, now: Cycle, pkt: CxlMemPacket) -> Cycle {
        let injected = self.gate.send(now, pkt.wire_bytes() as u64);
        let arrival = injected + self.latency;
        self.wire.push_at(arrival, pkt);
        self.stats.record(pkt.wire_bytes() as u64, pkt.req.write);
        arrival
    }
}

/// A full-duplex CXL.mem link in a single clock domain.
///
/// The "m2s" direction carries host→device traffic, "s2m" device→host.
#[derive(Debug)]
pub struct CxlLink {
    m2s: Direction,
    s2m: Direction,
    config: CxlLinkConfig,
}

impl CxlLink {
    /// Builds the link in the `clock` domain.
    pub fn new(config: CxlLinkConfig, clock: Frequency) -> Self {
        let latency = clock.cycles_from_ns(config.one_way_ns);
        let bpc = clock.bytes_per_cycle(config.bw_per_dir_bytes_per_sec);
        let dir = || Direction {
            gate: BandwidthGate::new(bpc),
            wire: DelayPipe::new(),
            latency,
            stats: TrafficStats::default(),
        };
        Self {
            m2s: dir(),
            s2m: dir(),
            config,
        }
    }

    /// Sends a host→device packet; returns its arrival cycle.
    pub fn send_m2s(&mut self, now: Cycle, pkt: CxlMemPacket) -> Cycle {
        self.m2s.send(now, pkt)
    }

    /// Sends a device→host packet; returns its arrival cycle.
    pub fn send_s2m(&mut self, now: Cycle, pkt: CxlMemPacket) -> Cycle {
        self.s2m.send(now, pkt)
    }

    /// Pops a host→device packet that has arrived by `now`.
    pub fn recv_m2s(&mut self, now: Cycle) -> Option<CxlMemPacket> {
        self.m2s.wire.pop_ready(now)
    }

    /// Pops a device→host packet that has arrived by `now`.
    pub fn recv_s2m(&mut self, now: Cycle) -> Option<CxlMemPacket> {
        self.s2m.wire.pop_ready(now)
    }

    /// One-way latency in this clock domain's cycles.
    pub fn one_way_cycles(&self) -> Cycle {
        self.m2s.latency
    }

    /// The link configuration.
    pub fn config(&self) -> &CxlLinkConfig {
        &self.config
    }

    /// Wire bytes moved host→device.
    pub fn m2s_bytes(&self) -> u64 {
        self.m2s.stats.total_bytes()
    }

    /// Wire bytes moved device→host.
    pub fn s2m_bytes(&self) -> u64 {
        self.s2m.stats.total_bytes()
    }

    /// Earliest pending arrival cycle in either direction.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        match (
            self.m2s.wire.next_ready_cycle(),
            self.s2m.wire.next_ready_cycle(),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Whether both directions are empty.
    pub fn is_idle(&self) -> bool {
        self.m2s.wire.is_empty() && self.s2m.wire.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2ndp_mem::{MemReq, ReqId, ReqSource};

    fn link() -> CxlLink {
        CxlLink::new(CxlLinkConfig::default_150ns(), Frequency::ghz(2.0))
    }

    fn read_pkt(id: u64) -> CxlMemPacket {
        CxlMemPacket::read(MemReq::read(ReqId(id), 0x1000, 64, ReqSource::Host))
    }

    #[test]
    fn one_way_latency_is_75ns() {
        let l = link();
        assert_eq!(l.one_way_cycles(), 150); // 75 ns at 2 GHz
        assert!((l.config().load_to_use_ns() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn packet_arrives_after_latency() {
        let mut l = link();
        let arrival = l.send_m2s(0, read_pkt(1));
        assert!(arrival >= 150);
        assert!(l.recv_m2s(arrival - 1).is_none());
        assert!(l.recv_m2s(arrival).is_some());
    }

    #[test]
    fn directions_are_independent() {
        let mut l = link();
        l.send_m2s(0, read_pkt(1));
        assert!(l.recv_s2m(10_000).is_none());
        assert!(l.recv_m2s(10_000).is_some());
    }

    #[test]
    fn bandwidth_serializes_burst() {
        let mut l = link();
        // 64 GB/s at 2 GHz = 32 B/cycle; an 80 B DRS occupies 2.5 cycles.
        let mut last = 0;
        for i in 0..100 {
            let pkt = CxlMemPacket::data_response(MemReq::read(ReqId(i), 0, 64, ReqSource::Host));
            last = l.send_s2m(0, pkt);
        }
        // 100 * 80 B / 32 B-per-cycle = 250 cycles of serialization + wire.
        assert!(last >= 250 + 150, "burst finished too early: {last}");
        assert_eq!(l.s2m_bytes(), 8000);
    }

    #[test]
    fn ltu_scaling() {
        let cfg = CxlLinkConfig::default_150ns().with_ltu_scale(4.0);
        assert!((cfg.load_to_use_ns() - 600.0).abs() < 1e-9);
        let l = CxlLink::new(cfg, Frequency::ghz(2.0));
        assert_eq!(l.one_way_cycles(), 600);
    }
}
