//! CXL.mem message types and wire sizes.
//!
//! CXL.mem defines master-to-subordinate (M2S) request channels and
//! subordinate-to-master (S2M) response channels; CXL 3.0's HDM-DB model
//! adds back-invalidation (BI) channels (§II-B). For bandwidth accounting we
//! charge each message its slot footprint inside the 256 B flits: 16 B for
//! header-only messages, header + 64 B for data-carrying ones.

use m2ndp_mem::MemReq;

/// Wire size of a header-only CXL.mem message (bytes).
pub const HEADER_BYTES: u32 = 16;
/// Payload carried by one data message (one cacheline).
pub const DATA_BYTES: u32 = 64;

/// Classification of a CXL.mem message for size accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// M2S Req — memory read request (header only).
    MemRead,
    /// M2S RwD — memory write with data.
    MemWrite,
    /// S2M DRS — data response.
    DataResponse,
    /// S2M NDR — no-data response (write completion).
    NoDataResponse,
    /// S2M BISnp — back-invalidation snoop to the host.
    BackInvSnoop,
    /// M2S BIRsp — back-invalidation response from the host.
    BackInvResponse,
}

impl PacketKind {
    /// Bytes this message occupies on the wire.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            PacketKind::MemRead
            | PacketKind::NoDataResponse
            | PacketKind::BackInvSnoop
            | PacketKind::BackInvResponse => HEADER_BYTES,
            PacketKind::MemWrite | PacketKind::DataResponse => HEADER_BYTES + DATA_BYTES,
        }
    }

    /// Whether the message flows host→device (M2S).
    pub fn is_m2s(&self) -> bool {
        matches!(
            self,
            PacketKind::MemRead | PacketKind::MemWrite | PacketKind::BackInvResponse
        )
    }
}

/// A CXL.mem message in flight on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CxlMemPacket {
    /// Message kind (sets direction and wire size).
    pub kind: PacketKind,
    /// The memory request this message belongs to.
    pub req: MemReq,
}

impl CxlMemPacket {
    /// A read request for `req`.
    pub fn read(req: MemReq) -> Self {
        Self {
            kind: PacketKind::MemRead,
            req,
        }
    }

    /// A write (request-with-data) for `req`.
    pub fn write(req: MemReq) -> Self {
        Self {
            kind: PacketKind::MemWrite,
            req,
        }
    }

    /// The data response completing `req`.
    pub fn data_response(req: MemReq) -> Self {
        Self {
            kind: PacketKind::DataResponse,
            req,
        }
    }

    /// The no-data response completing a write `req`.
    pub fn ack(req: MemReq) -> Self {
        Self {
            kind: PacketKind::NoDataResponse,
            req,
        }
    }

    /// Wire footprint: header, plus one data slot per 64 B of payload for
    /// data-carrying messages.
    pub fn wire_bytes(&self) -> u32 {
        match self.kind {
            PacketKind::MemWrite | PacketKind::DataResponse => {
                HEADER_BYTES + self.req.bytes.div_ceil(DATA_BYTES).max(1) * DATA_BYTES
            }
            _ => self.kind.wire_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2ndp_mem::{ReqId, ReqSource};

    fn req(bytes: u32) -> MemReq {
        MemReq::read(ReqId(1), 0x1000, bytes, ReqSource::Host)
    }

    #[test]
    fn header_only_messages_are_16_bytes() {
        assert_eq!(PacketKind::MemRead.wire_bytes(), 16);
        assert_eq!(PacketKind::NoDataResponse.wire_bytes(), 16);
        assert_eq!(PacketKind::BackInvSnoop.wire_bytes(), 16);
    }

    #[test]
    fn data_messages_carry_cacheline() {
        assert_eq!(CxlMemPacket::data_response(req(64)).wire_bytes(), 80);
        assert_eq!(CxlMemPacket::data_response(req(32)).wire_bytes(), 80);
        assert_eq!(CxlMemPacket::data_response(req(128)).wire_bytes(), 144);
    }

    #[test]
    fn direction_classification() {
        assert!(PacketKind::MemRead.is_m2s());
        assert!(PacketKind::MemWrite.is_m2s());
        assert!(!PacketKind::DataResponse.is_m2s());
        assert!(!PacketKind::BackInvSnoop.is_m2s());
        assert!(PacketKind::BackInvResponse.is_m2s());
    }
}
