//! Property tests: packet-filter classification, link conservation, and
//! HDM routing across the devices behind a switch.

use m2ndp_cxl::filter::Asid;
use m2ndp_cxl::{
    CxlLink, CxlLinkConfig, CxlMemPacket, FilterEntry, HdmRouter, PacketFilter, HDM_PAGE_BYTES,
};
use m2ndp_mem::{MemReq, ReqId, ReqSource};
use m2ndp_sim::Frequency;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The filter matches exactly the addresses inside a registered region.
    #[test]
    fn filter_matches_iff_in_range(base in 0u64..(1 << 40),
                                   size in 1u64..(1 << 20),
                                   probe in any::<u64>()) {
        let mut f = PacketFilter::new();
        let bound = base.saturating_add(size);
        prop_assume!(bound > base);
        f.insert(FilterEntry { base, bound, asid: Asid(7) }).expect("insert");
        let hit = f.matches(probe);
        if probe >= base && probe < bound {
            let m = hit.expect("must match inside region");
            prop_assert_eq!(m.offset, probe - base);
            prop_assert_eq!(m.asid, Asid(7));
        } else {
            prop_assert!(hit.is_none(), "false match at {probe:#x}");
        }
    }

    /// Non-overlapping regions for many processes never cross-match.
    #[test]
    fn filter_isolates_processes(n in 2u16..32, probe_proc in 0u16..32) {
        let n = n.max(2);
        let probe_proc = probe_proc % n;
        let mut f = PacketFilter::new();
        for p in 0..n {
            f.insert(FilterEntry {
                base: (p as u64) << 20,
                bound: ((p as u64) << 20) + 0x10000,
                asid: Asid(p),
            }).expect("insert");
        }
        let addr = ((probe_proc as u64) << 20) + 0x40;
        prop_assert_eq!(f.matches(addr).expect("in range").asid, Asid(probe_proc));
    }

    /// Every packet sent over a link direction arrives exactly once, in
    /// order, and never before the one-way latency.
    #[test]
    fn link_delivers_everything_in_order(count in 1usize..100, gap in 0u64..10) {
        let mut link = CxlLink::new(CxlLinkConfig::default_150ns(), Frequency::ghz(2.0));
        let mut sent_at = Vec::new();
        let mut now = 0u64;
        for i in 0..count {
            let pkt = CxlMemPacket::read(MemReq::read(ReqId(i as u64), 0x1000, 64, ReqSource::Host));
            link.send_m2s(now, pkt);
            sent_at.push(now);
            now += gap;
        }
        let one_way = link.one_way_cycles();
        let mut received = 0usize;
        for t in 0..now + one_way + 10_000 {
            while let Some(pkt) = link.recv_m2s(t) {
                prop_assert_eq!(pkt.req.id, ReqId(received as u64), "out of order");
                prop_assert!(t >= sent_at[received] + one_way,
                    "arrived early: {t} < {} + {one_way}", sent_at[received]);
                received += 1;
            }
        }
        prop_assert_eq!(received, count);
    }

    /// Every address inside the routed HDM resolves to exactly one device
    /// (and addresses outside to none), for arbitrary device counts.
    #[test]
    fn router_routes_every_hdm_address_to_exactly_one_device(
        devices in 1usize..=64,
        pages_per_device in 1u64..64,
        probe in any::<u64>(),
    ) {
        let base = 4 * HDM_PAGE_BYTES;
        let r = HdmRouter::even_pages(base, pages_per_device * HDM_PAGE_BYTES, devices);
        let (lo, hi) = r.total_span();
        // Clamp the probe into (and just around) the HDM window so the
        // in-range case is actually exercised.
        let probe = lo.saturating_sub(HDM_PAGE_BYTES) + probe % (hi - lo + 2 * HDM_PAGE_BYTES);
        let owners = (0..devices)
            .filter(|&d| {
                let (b, e) = r.span(d);
                (b..e).contains(&probe)
            })
            .count();
        if (lo..hi).contains(&probe) {
            prop_assert_eq!(owners, 1, "address {probe:#x} must have one owner");
            let d = r.device_of(probe).expect("routes");
            let (dev, off) = r.local_offset(probe).expect("translates");
            prop_assert_eq!(dev, d);
            prop_assert_eq!(r.span(d).0 + off, probe);
        } else {
            prop_assert_eq!(owners, 0);
            prop_assert!(r.device_of(probe).is_none());
            prop_assert!(r.local_offset(probe).is_none());
        }
    }

    /// Device spans are contiguous, non-overlapping, equally sized, and
    /// page-granular for arbitrary device counts and capacities.
    #[test]
    fn router_spans_are_contiguous_nonoverlapping_pages(
        devices in 1usize..=64,
        bytes_per_device in 1u64..(1 << 26),
    ) {
        let r = HdmRouter::even_pages(0, bytes_per_device, devices);
        prop_assert_eq!(r.devices(), devices);
        let per = r.span(0).1 - r.span(0).0;
        prop_assert_eq!(per % HDM_PAGE_BYTES, 0, "span must be whole pages");
        prop_assert!(per >= bytes_per_device, "rounding must never shrink");
        prop_assert!(per - bytes_per_device < HDM_PAGE_BYTES, "round up at most one page");
        for d in 0..devices {
            let (b, e) = r.span(d);
            prop_assert_eq!(b % HDM_PAGE_BYTES, 0, "device {d} base page-aligned");
            prop_assert_eq!(e - b, per, "device {d} span equal-sized");
            if d > 0 {
                prop_assert_eq!(r.span(d - 1).1, b, "device {d} contiguous");
            }
        }
    }

    /// 2 MB placement granularity: a page never straddles devices — every
    /// address of a page routes to the device owning the page's base.
    #[test]
    fn router_places_whole_pages(
        devices in 1usize..=64,
        pages_per_device in 1u64..64,
        page_sel in any::<u64>(),
        offset in 0u64..HDM_PAGE_BYTES,
    ) {
        let r = HdmRouter::even_pages(0, pages_per_device * HDM_PAGE_BYTES, devices);
        let total_pages = devices as u64 * pages_per_device;
        let page = page_sel % total_pages;
        let addr = page * HDM_PAGE_BYTES + offset;
        prop_assert_eq!(r.device_of(addr), r.device_of(page * HDM_PAGE_BYTES));
        prop_assert_eq!(r.page_of(addr), Some(page));
    }
}
