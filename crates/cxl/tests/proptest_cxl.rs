//! Property tests: packet-filter classification and link conservation.

use m2ndp_cxl::filter::Asid;
use m2ndp_cxl::{CxlLink, CxlLinkConfig, CxlMemPacket, FilterEntry, PacketFilter};
use m2ndp_mem::{MemReq, ReqId, ReqSource};
use m2ndp_sim::Frequency;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The filter matches exactly the addresses inside a registered region.
    #[test]
    fn filter_matches_iff_in_range(base in 0u64..(1 << 40),
                                   size in 1u64..(1 << 20),
                                   probe in any::<u64>()) {
        let mut f = PacketFilter::new();
        let bound = base.saturating_add(size);
        prop_assume!(bound > base);
        f.insert(FilterEntry { base, bound, asid: Asid(7) }).expect("insert");
        let hit = f.matches(probe);
        if probe >= base && probe < bound {
            let m = hit.expect("must match inside region");
            prop_assert_eq!(m.offset, probe - base);
            prop_assert_eq!(m.asid, Asid(7));
        } else {
            prop_assert!(hit.is_none(), "false match at {probe:#x}");
        }
    }

    /// Non-overlapping regions for many processes never cross-match.
    #[test]
    fn filter_isolates_processes(n in 2u16..32, probe_proc in 0u16..32) {
        let n = n.max(2);
        let probe_proc = probe_proc % n;
        let mut f = PacketFilter::new();
        for p in 0..n {
            f.insert(FilterEntry {
                base: (p as u64) << 20,
                bound: ((p as u64) << 20) + 0x10000,
                asid: Asid(p),
            }).expect("insert");
        }
        let addr = ((probe_proc as u64) << 20) + 0x40;
        prop_assert_eq!(f.matches(addr).expect("in range").asid, Asid(probe_proc));
    }

    /// Every packet sent over a link direction arrives exactly once, in
    /// order, and never before the one-way latency.
    #[test]
    fn link_delivers_everything_in_order(count in 1usize..100, gap in 0u64..10) {
        let mut link = CxlLink::new(CxlLinkConfig::default_150ns(), Frequency::ghz(2.0));
        let mut sent_at = Vec::new();
        let mut now = 0u64;
        for i in 0..count {
            let pkt = CxlMemPacket::read(MemReq::read(ReqId(i as u64), 0x1000, 64, ReqSource::Host));
            link.send_m2s(now, pkt);
            sent_at.push(now);
            now += gap;
        }
        let one_way = link.one_way_cycles();
        let mut received = 0usize;
        for t in 0..now + one_way + 10_000 {
            while let Some(pkt) = link.recv_m2s(t) {
                prop_assert_eq!(pkt.req.id, ReqId(received as u64), "out of order");
                prop_assert!(t >= sent_at[received] + one_way,
                    "arrived early: {t} < {} + {one_way}", sent_at[received]);
                received += 1;
            }
        }
        prop_assert_eq!(received, count);
    }
}
