//! End-to-end tests of the `m2ndp-asm` binary over the `programs/` corpus.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_m2ndp-asm"))
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../programs")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("programs/ exists at the repo root")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| m2ndp_asm::is_asm_source(p))
        .collect();
    files.sort();
    files
}

#[test]
fn check_passes_on_the_whole_corpus() {
    let files = corpus_files();
    assert_eq!(files.len(), 15, "corpus size pinned; update on add/remove");
    let out = bin()
        .arg("check")
        .args(&files)
        .output()
        .expect("spawn m2ndp-asm");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), files.len());
    assert!(stdout.lines().all(|l| l.contains(": OK (")), "{stdout}");
}

#[test]
fn disasm_of_corpus_reassembles_byte_identically() {
    for file in corpus_files() {
        let out = bin().arg("disasm").arg(&file).output().unwrap();
        assert!(
            out.status.success(),
            "{}: {}",
            file.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        let original = m2ndp_riscv::assemble(&std::fs::read_to_string(&file).unwrap()).unwrap();
        let reassembled = m2ndp_riscv::assemble(&text)
            .unwrap_or_else(|e| panic!("{}: disasm output must assemble: {e}", file.display()));
        assert_eq!(reassembled, original, "{}", file.display());
        // Canonical text is a fixpoint: disassembling again is byte-identical.
        let again = m2ndp_riscv::disassemble(&reassembled).unwrap();
        assert_eq!(again, text, "{}", file.display());
    }
}

#[test]
fn asm_listing_reports_register_usage() {
    let spmv = corpus_dir().join("spmv.s");
    let out = bin().arg("asm").arg(&spmv).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("row_loop:"), "{stdout}");
    assert!(stdout.contains("vector_regs="), "{stdout}");
}

#[test]
fn missing_file_exits_nonzero_with_path_in_message() {
    let out = bin().arg("check").arg("no/such/file.s").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("no/such/file.s"), "{stderr}");
}

#[test]
fn assembly_error_is_line_accurate() {
    let dir = std::env::temp_dir().join("m2ndp-asm-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join("broken.s");
    std::fs::write(&p, "halt\nhalt\nld x5, oops(x3)\n").unwrap();
    let out = bin().arg("check").arg(&p).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("broken.s:3:"), "{stderr}");
}
