//! The `m2ndp-asm` command-line toolchain for the M²NDP kernel dialect.
//!
//! Three subcommands over the `.s` sources in `programs/` (or any file in
//! the accepted dialect):
//!
//! * `check <file.s>...` — assemble each file and report instruction/label
//!   counts, or a line-accurate `file:line: message` error;
//! * `asm <file.s>...` — assemble and print the program listing: labels,
//!   indexed instruction forms, and the register-usage summary the kernel
//!   registration interface needs (Table II's `numIntRegs` etc.);
//! * `disasm <file.s>...` — assemble then print the canonical disassembly,
//!   which re-assembles to the identical program (the round-trip law; see
//!   `m2ndp_riscv::disasm`).
//!
//! With `--format json` every subcommand instead emits the machine-readable
//! report shape shared with the `m2ndp-trace` CLI: a top-level
//! `{"ok": bool, "diagnostics": [...]}` envelope (each diagnostic carrying
//! the same `path`/`line` anchor the text form renders as `path:line:`)
//! plus a `files` payload array. In JSON mode all files are processed so a
//! single run reports every error, not just the first.
//!
//! The library surface exists so integration tests can drive the CLI logic
//! without spawning processes; `src/main.rs` is a thin wrapper.

use std::fmt::Write as _;
use std::path::Path;

use m2ndp_riscv::{assemble, disassemble, Program};
use m2ndp_sim::json::{report_json, Diagnostic, Json};

/// Usage text printed on bad invocations.
pub const USAGE: &str = "usage: m2ndp-asm <check|asm|disasm> [--format text|json] <file.s>...

  check   assemble each file; report counts or a file:line error
  asm     assemble and print the indexed program listing
  disasm  assemble and print canonical round-trippable disassembly

  --format text|json   report format (json shares the diagnostics shape
                       with m2ndp-trace and reports all files' errors)";

/// A CLI failure: what to print on stderr (exit status is always 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// The message, already formatted as `file:line: reason` where a source
    /// location exists.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn fail(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

/// Reads and assembles one source file. The diagnostic carries the
/// `path`/`line` anchor; text mode renders it as `file:line: message`.
fn load(path: &str) -> Result<(String, Program), Diagnostic> {
    let text =
        std::fs::read_to_string(path).map_err(|e| Diagnostic::error_in(path, e.to_string()))?;
    let program =
        assemble(&text).map_err(|e| Diagnostic::error_at(path, e.line as u64, e.message))?;
    Ok((text, program))
}

/// Renders the `check` report line for one assembled file.
fn check_line(path: &str, program: &Program) -> String {
    format!(
        "{path}: OK ({} instrs, {} labels)",
        program.len(),
        program.labels().len()
    )
}

/// Renders the `asm` listing: labels interleaved at their indices, indexed
/// instruction forms, and the register-usage footer.
fn listing(program: &Program) -> String {
    let mut at: std::collections::BTreeMap<usize, Vec<&str>> = std::collections::BTreeMap::new();
    for (name, &idx) in program.labels() {
        at.entry(idx).or_default().push(name);
    }
    for names in at.values_mut() {
        names.sort_unstable();
    }
    let mut out = String::new();
    for (idx, instr) in program.instrs().iter().enumerate() {
        for name in at.get(&idx).into_iter().flatten() {
            let _ = writeln!(out, "{name}:");
        }
        let _ = writeln!(out, "{idx:>4}  {instr:?}");
    }
    for name in at.get(&program.len()).into_iter().flatten() {
        let _ = writeln!(out, "{name}:");
    }
    let u = program.reg_usage();
    let _ = writeln!(
        out,
        "; {} instrs, int_regs={}, float_regs={}, vector_regs={}",
        program.len(),
        u.int_regs,
        u.float_regs,
        u.vector_regs
    );
    out
}

/// Runs the CLI on `args` (without the argv\[0\] program name), writing
/// reports to `out`. On failure the error carries the formatted
/// `file:line: message` diagnostic for stderr.
///
/// # Errors
/// Returns a [`CliError`] on usage mistakes, unreadable files, assembly
/// errors, or non-canonical programs the disassembler rejects.
pub fn run(args: &[String], out: &mut String) -> Result<(), CliError> {
    // Strip `--format FMT` (position-independent) before the positional
    // split, so `check --format json a.s` and `check a.s --format json`
    // both work.
    let mut json = false;
    let mut rest: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--format" {
            match it.next().map(String::as_str) {
                Some("text") => json = false,
                Some("json") => json = true,
                Some(other) => return Err(fail(format!("unknown format `{other}`\n{USAGE}"))),
                None => return Err(fail(format!("--format expects a value\n{USAGE}"))),
            }
        } else {
            rest.push(arg);
        }
    }
    let (cmd, files) = rest.split_first().ok_or_else(|| fail(USAGE))?;
    if files.is_empty() {
        return Err(fail(USAGE));
    }
    if !matches!(cmd.as_str(), "check" | "asm" | "disasm") {
        return Err(fail(format!("unknown subcommand `{cmd}`\n{USAGE}")));
    }
    if json {
        return run_json(cmd, files, out);
    }
    let banner = files.len() > 1;
    for path in files {
        match cmd.as_str() {
            "check" => {
                let (_, program) = load(path).map_err(|d| fail(d.human()))?;
                let _ = writeln!(out, "{}", check_line(path, &program));
            }
            "asm" => {
                let (_, program) = load(path).map_err(|d| fail(d.human()))?;
                if banner {
                    let _ = writeln!(out, "== {path} ==");
                }
                out.push_str(&listing(&program));
            }
            _ => {
                let (_, program) = load(path).map_err(|d| fail(d.human()))?;
                if banner {
                    let _ = writeln!(out, "== {path} ==");
                }
                let text = disassemble(&program)
                    .map_err(|e| fail(format!("{path}: instr {}: {}", e.index, e.message)))?;
                out.push_str(&text);
            }
        }
    }
    Ok(())
}

/// The `--format json` driver: processes every file (reporting all errors,
/// not just the first) and emits the shared
/// `{"ok", "diagnostics", "files"}` report.
fn run_json(cmd: &str, files: &[&String], out: &mut String) -> Result<(), CliError> {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut file_objs: Vec<Json> = Vec::new();
    for path in files {
        let path = path.as_str();
        let mut pairs = vec![("path".to_string(), Json::Str(path.to_string()))];
        match load(path) {
            Err(d) => {
                pairs.push(("ok".to_string(), Json::Bool(false)));
                diags.push(d);
            }
            Ok((_, program)) => {
                let mut ok = true;
                let u = program.reg_usage();
                let mut extra = vec![
                    ("instrs".to_string(), Json::U64(program.len() as u64)),
                    (
                        "labels".to_string(),
                        Json::U64(program.labels().len() as u64),
                    ),
                    ("int_regs".to_string(), Json::U64(u64::from(u.int_regs))),
                    ("float_regs".to_string(), Json::U64(u64::from(u.float_regs))),
                    (
                        "vector_regs".to_string(),
                        Json::U64(u64::from(u.vector_regs)),
                    ),
                ];
                match cmd {
                    "asm" => extra.push(("listing".to_string(), Json::Str(listing(&program)))),
                    "disasm" => match disassemble(&program) {
                        Ok(text) => extra.push(("disassembly".to_string(), Json::Str(text))),
                        Err(e) => {
                            ok = false;
                            diags.push(Diagnostic::error_in(
                                path,
                                format!("instr {}: {}", e.index, e.message),
                            ));
                        }
                    },
                    _ => {}
                }
                pairs.push(("ok".to_string(), Json::Bool(ok)));
                pairs.extend(extra);
            }
        }
        file_objs.push(Json::Obj(pairs));
    }
    let failed = !diags.is_empty();
    let first = diags.first().map(Diagnostic::human);
    out.push_str(&report_json(&diags, vec![("files".to_string(), Json::Arr(file_objs))]).pretty());
    out.push('\n');
    if failed {
        return Err(fail(first.unwrap_or_default()));
    }
    Ok(())
}

/// Convenience for `main`: run and translate to an exit code, printing to
/// the real stdout/stderr.
pub fn main_impl(args: Vec<String>) -> i32 {
    let mut out = String::new();
    match run(&args, &mut out) {
        Ok(()) => {
            print!("{out}");
            0
        }
        Err(e) => {
            print!("{out}");
            eprintln!("{e}");
            1
        }
    }
}

/// Returns true when `path` looks like an assembly source (used by shell
/// completion helpers and the corpus test to filter `programs/`).
pub fn is_asm_source(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "s")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str, content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("m2ndp-asm-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    #[test]
    fn check_reports_counts() {
        let p = tmpfile("ok.s", "start:\nli x5, 1\nj start\nhalt\n");
        let mut out = String::new();
        run(&["check".to_string(), p.display().to_string()], &mut out).unwrap();
        assert!(out.contains("OK (3 instrs, 1 labels)"), "{out}");
    }

    #[test]
    fn errors_carry_file_and_line() {
        let p = tmpfile("bad.s", "li x5, 1\nbogus x1, x2\n");
        let mut out = String::new();
        let e = run(&["check".to_string(), p.display().to_string()], &mut out).unwrap_err();
        assert!(
            e.message.contains("bad.s:2:"),
            "line-accurate error, got: {}",
            e.message
        );
    }

    #[test]
    fn disasm_output_reassembles_identically() {
        let p = tmpfile(
            "rt.s",
            "loop:\naddi x5, x5, -1\nbnez x5, loop\nvsetvli x0, x0, e32\nvle32.v v1, (x1)\nhalt\n",
        );
        let mut out = String::new();
        run(&["disasm".to_string(), p.display().to_string()], &mut out).unwrap();
        let original = assemble(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(assemble(&out).unwrap(), original);
    }

    #[test]
    fn asm_listing_shows_labels_and_reg_usage() {
        let p = tmpfile("list.s", "top:\nadd x4, x3, x3\nj top\n");
        let mut out = String::new();
        run(&["asm".to_string(), p.display().to_string()], &mut out).unwrap();
        assert!(out.contains("top:"), "{out}");
        assert!(out.contains("int_regs=5"), "{out}");
    }

    #[test]
    fn bad_usage_is_an_error() {
        let mut out = String::new();
        assert!(run(&[], &mut out).is_err());
        assert!(run(&["check".to_string()], &mut out).is_err());
        let p = tmpfile("u.s", "halt\n");
        let e = run(
            &["frobnicate".to_string(), p.display().to_string()],
            &mut out,
        )
        .unwrap_err();
        assert!(e.message.contains("unknown subcommand"));
    }

    #[test]
    fn source_filter_accepts_dot_s() {
        assert!(is_asm_source(Path::new("programs/spmv.s")));
        assert!(!is_asm_source(Path::new("README.md")));
    }

    #[test]
    fn json_check_reports_counts_in_shared_shape() {
        let p = tmpfile("jok.s", "start:\nli x5, 1\nj start\nhalt\n");
        let mut out = String::new();
        run(
            &[
                "check".to_string(),
                "--format".to_string(),
                "json".to_string(),
                p.display().to_string(),
            ],
            &mut out,
        )
        .unwrap();
        let json = Json::parse(&out).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(json.get("diagnostics"), Some(&Json::Arr(Vec::new())));
        let Some(Json::Arr(files)) = json.get("files") else {
            panic!("missing files array: {out}");
        };
        assert_eq!(files[0].get("instrs"), Some(&Json::U64(3)));
        assert_eq!(files[0].get("labels"), Some(&Json::U64(1)));
    }

    #[test]
    fn json_check_reports_every_file_with_line_anchors() {
        let good = tmpfile("jg.s", "halt\n");
        let bad = tmpfile("jb.s", "li x5, 1\nbogus x1, x2\n");
        let mut out = String::new();
        let e = run(
            &[
                "check".to_string(),
                bad.display().to_string(),
                good.display().to_string(),
                "--format".to_string(),
                "json".to_string(),
            ],
            &mut out,
        )
        .unwrap_err();
        assert!(e.message.contains("jb.s:2:"), "{e}");
        let json = Json::parse(&out).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        let Some(Json::Arr(diags)) = json.get("diagnostics") else {
            panic!("missing diagnostics: {out}");
        };
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].get("line"), Some(&Json::U64(2)));
        // Both files are still reported; the good one is ok.
        let Some(Json::Arr(files)) = json.get("files") else {
            panic!("missing files array: {out}");
        };
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(files[1].get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn json_disasm_embeds_round_trippable_text() {
        let p = tmpfile("jrt.s", "addi x5, x5, -1\nhalt\n");
        let mut out = String::new();
        run(
            &[
                "disasm".to_string(),
                "--format".to_string(),
                "json".to_string(),
                p.display().to_string(),
            ],
            &mut out,
        )
        .unwrap();
        let json = Json::parse(&out).unwrap();
        let Some(Json::Arr(files)) = json.get("files") else {
            panic!("missing files array: {out}");
        };
        let Some(Json::Str(disasm)) = files[0].get("disassembly") else {
            panic!("missing disassembly: {out}");
        };
        let original = assemble(&std::fs::read_to_string(&p).unwrap()).unwrap();
        assert_eq!(assemble(disasm).unwrap(), original);
    }
}
