//! `m2ndp-asm`: assemble, check, and disassemble M²NDP kernel sources.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(m2ndp_asm::main_impl(args));
}
