//! # M²NDP — Memory-Mapped Near-Data Processing in CXL Memory Expanders
//!
//! A from-scratch Rust reproduction of the MICRO 2024 paper
//! *"Low-overhead General-purpose Near-Data Processing in CXL Memory
//! Expanders"* (Ham et al., arXiv:2404.19381): a cycle-level simulator for
//! CXL memory expanders with general-purpose NDP, including every substrate
//! the evaluation depends on.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`sim`] | simulation primitives (queues, delay pipes, bandwidth gates, stats, RNG) |
//! | [`mem`] | DRAM timing (LPDDR5/DDR5/HBM2), FR-FCFS controllers, functional memory |
//! | [`cache`] | sectored caches, MSHRs, scratchpads |
//! | [`noc`] | crossbar interconnect |
//! | [`cxl`] | CXL.mem links, CXL.io costs, the M²func packet filter, switch, back-invalidation |
//! | [`riscv`] | the NDP ISA: RV64IMAFD+V subset, assembler, functional executor |
//! | [`core`] | **the paper's contribution**: M²func management + the M²µthread engine + the CXL-M²NDP device |
//! | [`host`] | host CPU model, offload mechanisms, roofline, prior-work stand-ins |
//! | [`workloads`] | Table V workloads: OLAP, KVStore, HISTO, SPMV, PGRANK, SSSP, DLRM, OPT |
//! | [`energy`] | energy and area models (§IV-E/F) |
//!
//! ## Quickstart
//!
//! ```
//! use m2ndp::core::{CxlM2ndpDevice, KernelSpec, LaunchArgs, M2ndpConfig};
//! use m2ndp::riscv::assemble;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small CXL-M²NDP device (4 NDP units to keep the doctest quick).
//! let mut cfg = M2ndpConfig::default_device();
//! cfg.engine.units = 4;
//! let mut device = CxlM2ndpDevice::new(cfg);
//!
//! // C = A + A over a vector in device memory: each µthread owns the 32 B
//! // granule its x1 register points at (memory-mapped µthreads, §III-D).
//! let body = assemble(
//!     "vsetvli x0, x0, e32, m1
//!      vle32.v v1, (x1)
//!      vadd.vv v1, v1, v1
//!      vse32.v v1, (x1)
//!      halt",
//! )?;
//! let base = 0x4000_0000u64;
//! for i in 0..1024u64 {
//!     device.memory_mut().write_u32(base + i * 4, i as u32);
//! }
//! let kid = device.register_kernel(KernelSpec::body_only("double", body));
//! let inst = device.launch(LaunchArgs::new(kid, base, base + 1024 * 4))?;
//! let finished_at = device.run_until_finished(inst);
//! assert!(finished_at > 0);
//! assert_eq!(device.memory().read_u32(base + 40), 20);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use m2ndp_cache as cache;
pub use m2ndp_core as core;
pub use m2ndp_cxl as cxl;
pub use m2ndp_energy as energy;
pub use m2ndp_host as host;
pub use m2ndp_mem as mem;
pub use m2ndp_noc as noc;
pub use m2ndp_riscv as riscv;
pub use m2ndp_sim as sim;
pub use m2ndp_workloads as workloads;

use m2ndp_core::{CxlM2ndpDevice, M2ndpConfig};
use m2ndp_sim::Frequency;

/// Convenience builder for the systems the evaluation compares.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    cfg: M2ndpConfig,
    remote: Option<M2ndpConfig>,
}

impl SystemBuilder {
    /// The paper's default CXL-M²NDP device (Table IV).
    pub fn m2ndp() -> Self {
        Self {
            cfg: M2ndpConfig::default_device(),
            remote: None,
        }
    }

    /// GPU-NDP: `sms` GPU SMs inside the CXL device (§IV-A).
    pub fn gpu_ndp(sms: u32, tb_warps: u32) -> Self {
        Self {
            cfg: M2ndpConfig::gpu_ndp_device(sms, Frequency::ghz(2.0), tb_warps),
            remote: None,
        }
    }

    /// The baseline host GPU (82 SMs, HBM2 local) with its workload data in
    /// a passive CXL expander across the link.
    pub fn gpu_baseline() -> Self {
        let gpu = M2ndpConfig {
            engine: m2ndp_core::EngineConfig::gpu_host(),
            dram: m2ndp_mem::DramConfig::hbm2_gpu(),
            workload_data_remote: true,
            ..M2ndpConfig::default_device()
        };
        Self {
            cfg: gpu,
            remote: Some(M2ndpConfig::default_device()),
        }
    }

    /// Scales the number of units (for quick tests and sweeps).
    pub fn units(mut self, units: u32) -> Self {
        self.cfg.engine.units = units;
        self
    }

    /// Sets the NDP unit frequency (Fig. 13a sweeps 1–3 GHz).
    pub fn frequency(mut self, freq: Frequency) -> Self {
        self.cfg.engine.freq = freq;
        self
    }

    /// Scales the CXL load-to-use latency (Fig. 13a's 2×/4× LtU).
    pub fn ltu_scale(mut self, factor: f64) -> Self {
        self.cfg.link = self.cfg.link.with_ltu_scale(factor);
        self
    }

    /// Sets the dirty-host-cache fraction (Fig. 13b).
    pub fn dirty_host_ratio(mut self, ratio: f64) -> Self {
        self.cfg.dirty_host_ratio = ratio;
        self
    }

    /// Access to the full configuration for bespoke tweaks.
    pub fn config_mut(&mut self) -> &mut M2ndpConfig {
        &mut self.cfg
    }

    /// Builds the device.
    pub fn build(self) -> CxlM2ndpDevice {
        let dev = CxlM2ndpDevice::new(self.cfg);
        match self.remote {
            Some(r) => dev.with_remote_cxl(r),
            None => dev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let m2 = SystemBuilder::m2ndp().build();
        assert_eq!(m2.config().engine.units, 32);
        assert!(m2.config().engine.has_scalar_units);

        let gn = SystemBuilder::gpu_ndp(8, 4).units(8).build();
        assert!(!gn.config().engine.has_scalar_units);
        assert_eq!(gn.config().engine.units, 8);

        let gb = SystemBuilder::gpu_baseline().build();
        assert_eq!(gb.config().dram.name, "HBM2");
    }

    #[test]
    fn ltu_scaling_applies() {
        let d = SystemBuilder::m2ndp().ltu_scale(4.0).build();
        assert!((d.config().link.load_to_use_ns() - 600.0).abs() < 1e-9);
    }
}
