//! Elastic serving with the pluggable scheduler API (Fig. 15): the same
//! two-tenant load — a steady Poisson stream plus a bursty tenant that
//! exhausts its budget halfway — is served by a small static fleet, a
//! big static fleet, and an SLO-targeting autoscaler that grows from the
//! small fleet's floor to the big fleet's ceiling. The autoscaler should
//! meet the P95 SLO the small fleet blows while spending a fraction of
//! the big fleet's device-time. Requests are routed by the
//! `ShortestQueue` scheduler (a dynamic kind, so every device replicates
//! the store) and each device exposes a single kernel slot so capacity
//! tracks the active-device count.
//!
//! ```text
//! cargo run --release --example elastic_serving
//! ```

use m2ndp::core::fleet::{Fleet, FleetConfig};
use m2ndp::core::M2ndpConfig;
use m2ndp::cxl::SwitchConfig;
use m2ndp::host::offload::OffloadMechanism;
use m2ndp::host::serve::{
    self, AutoscaleConfig, ReplicatedKvServeWorkload, SchedulerKind, ServeBackend, ServeConfig,
    TenantSpec,
};
use m2ndp::sim::trace::ScaleDir;

const SLO_NS: f64 = 5_000.0;
const RATE: f64 = 5e6;

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::poisson("steady", RATE * 0.6)
            .requests(2_400)
            .slo_ns(SLO_NS)
            .seed(0x5EC1),
        // Ends halfway through the run, so the second half offers less
        // load and gives the autoscaler a reason to drain devices.
        TenantSpec::burst("bursty", RATE * 0.4, 4.0, 50_000.0)
            .requests(400)
            .slo_ns(SLO_NS)
            .seed(0x5EC2),
    ]
}

fn run(devices: usize, autoscale: Option<AutoscaleConfig>) -> serve::ServeReport {
    let mut dev = M2ndpConfig::default_device();
    dev.engine.units = 2;
    let mut backend = ServeBackend::Fleet(Box::new(Fleet::new(FleetConfig {
        devices,
        device: dev,
        switch: SwitchConfig::default(),
        hdm_bytes_per_device: 1 << 30,
    })));
    let mut wl = ReplicatedKvServeWorkload::build(&mut backend, serve::KV_ITEMS_PER_DEVICE, 0.99);
    let mut cfg = ServeConfig::with_defaults(OffloadMechanism::M2Func)
        .scheduler(SchedulerKind::ShortestQueue)
        .device_slots(1);
    if let Some(a) = autoscale {
        cfg = cfg.autoscale(a);
    }
    serve::run(&mut backend, &mut wl, &cfg, &tenants())
}

fn main() {
    println!(
        "2800 requests at {RATE:.0e}/s, P95 SLO {SLO_NS:.0} ns, one kernel slot per device:\n"
    );
    println!(
        "{:<16} {:>10} {:>10} {:>16} {:>14}",
        "fleet", "P95 (ns)", "P95/SLO", "device-time", "scale events"
    );
    let autoscale = AutoscaleConfig::new(2, 8, SLO_NS)
        .interval_ns(20_000.0)
        .window(128)
        .scale_down_frac(0.2)
        .cooldown_ticks(1);
    let mut device_time = Vec::new();
    for (label, devices, policy) in [
        ("static 2-dev", 2, None),
        ("static 8-dev", 8, None),
        ("autoscale 2-8", 8, Some(autoscale)),
    ] {
        let mut report = run(devices, policy);
        let p95 = report.p95_ns();
        let ups = report
            .scale_events
            .iter()
            .filter(|e| e.dir == ScaleDir::Up)
            .count();
        let drains = report
            .scale_events
            .iter()
            .filter(|e| e.dir == ScaleDir::DrainStart)
            .count();
        device_time.push(report.device_time_ns);
        println!(
            "{label:<16} {p95:>10.0} {:>10.2} {:>13.2} ms {:>8}up/{drains}dn",
            p95 / SLO_NS,
            report.device_time_ns / 1e6,
            ups,
        );
    }
    println!(
        "\nThe autoscaler rides the burst phase up toward the ceiling, drains back to\n\
         the floor once the bursty tenant finishes, and lands under the SLO at\n\
         {:.0}% of the static 8-device fleet's device-time (the fig15 golden bands\n\
         gate exactly this at release scale).",
        100.0 * device_time[2] / device_time[1]
    );
}
