//! KVStore tail latency: fine-grained GET kernels on the device, then the
//! offload-mechanism comparison of Fig. 10b.
//!
//! ```text
//! cargo run --release --example kvstore_tail_latency
//! ```

use m2ndp::host::offload::{OffloadMechanism, OffloadModel, OffloadSim};
use m2ndp::workloads::kvstore;
use m2ndp::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = SystemBuilder::m2ndp().units(2).build();
    let cfg = kvstore::KvConfig {
        items: 64 << 10,
        buckets: 32 << 10,
        get_ratio: 1.0,
        requests: 100,
        zipf_theta: 0.99,
        seed: 0xCB5A,
    };
    let data = kvstore::generate(cfg, device.memory_mut());
    let kid = device.register_kernel(kvstore::kernel());
    let freq = device.config().engine.freq;

    // Measure per-request kernel service times on the device.
    let mut service_ns = Vec::new();
    for (i, &req) in data.requests.clone().iter().enumerate() {
        let start = device.now();
        let inst = device.launch(kvstore::launch(&data, kid, req, (i % 64) as u32, 0))?;
        let done = device.run_until_finished(inst);
        service_ns.push(freq.ns_from_cycles(done - start));
        kvstore::verify_get(&data, device.memory(), req, (i % 64) as u32)
            .map_err(std::io::Error::other)?;
    }
    let mut sorted = service_ns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "GET kernel runtime on the device: p50 {:.0} ns, p95 {:.0} ns (paper: 0.77 us P95)",
        sorted[sorted.len() / 2],
        sorted[(sorted.len() * 95) / 100]
    );

    // End-to-end P95 under each offload mechanism at 1M req/s.
    println!("\nend-to-end P95 at 1M req/s:");
    for (label, mech) in [
        ("M2func           ", OffloadMechanism::M2Func),
        ("CXL.io ring buf  ", OffloadMechanism::CxlIoRingBuffer),
        ("CXL.io direct    ", OffloadMechanism::CxlIoDirect),
    ] {
        let mut r = OffloadSim::new(OffloadModel::with_defaults(mech), 48).run(
            10_000,
            1.0e6,
            &service_ns,
            7,
        );
        println!(
            "  {label} P95 = {:>8.0} ns   throughput = {:.2e}/s",
            r.latencies.percentile(0.95),
            r.throughput
        );
    }
    println!("\nM2func keeps the launch overhead at 2 CXL.mem one-way latencies (150 ns),");
    println!("so the tail is dominated by the kernel itself, not the offload path (Fig. 10b).");
    Ok(())
}
