//! Quickstart: the Fig. 4 VectorAdd flow — register a kernel, launch it via
//! the M²func path, poll, and read the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use m2ndp::core::m2func::InstanceStatus;
use m2ndp::core::{KernelSpec, LaunchArgs};
use m2ndp::riscv::assemble;
use m2ndp::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the paper's CXL-M²NDP device (Table IV), shrunk to 8 units so
    // the example finishes instantly.
    let mut device = SystemBuilder::m2ndp().units(8).build();

    // The Fig. 4 example: C = A + B. Vectors A, B, C at fixed locations;
    // the µthread pool region is A, so each µthread owns a 32 B slice of A
    // (its address arrives in x1, the byte offset in x2) and computes the
    // matching slice of C. B's and C's bases are kernel arguments, read
    // from the argument block (x3) that the controller stages in each
    // unit's scratchpad.
    let n: u64 = 64 << 10; // f32 elements
    let (a, b, c) = (0xA0_0000u64, 0xB0_0000u64, 0xC0_0000u64);
    for i in 0..n {
        device.memory_mut().write_f32(a + i * 4, i as f32);
        device.memory_mut().write_f32(b + i * 4, 2.0 * i as f32);
    }

    let body = assemble(
        "vsetvli x0, x0, e32, m1
         vle32.v v1, (x1)      // A slice (pool region)
         ld x5, 40(x3)         // user arg 0: B base
         add x5, x5, x2        // + our offset
         vle32.v v2, (x5)
         vfadd.vv v3, v1, v2
         ld x6, 48(x3)         // user arg 1: C base
         add x6, x6, x2
         vse32.v v3, (x6)
         halt",
    )?;
    let spec = KernelSpec::body_only("vector_add", body);
    println!(
        "kernel `vector_add`: {} static instructions, {} int / {} vector registers per uthread",
        spec.static_instrs(),
        spec.int_regs,
        spec.vector_regs
    );

    // Table II flow: register, launch (async), poll, check.
    let kid = device.register_kernel(spec);
    let inst = device.launch(LaunchArgs::new(kid, a, a + n * 4).with_args(vec![b, c]))?;
    println!(
        "launched instance {:?} over pool [{a:#x}, {:#x})",
        inst,
        a + n * 4
    );

    let finished_at = device.run_until_finished(inst);
    assert_eq!(device.poll(inst), Some(InstanceStatus::Finished));

    for i in (0..n).step_by(7919) {
        let got = device.memory().read_f32(c + i * 4);
        assert_eq!(got, 3.0 * i as f32, "C[{i}]");
    }
    let stats = device.stats();
    let ns = device.config().engine.freq.ns_from_cycles(finished_at);
    println!(
        "done in {finished_at} cycles ({:.1} us): {} DRAM bytes, {:.0}% of internal DRAM bandwidth",
        ns / 1e3,
        stats.dram_bytes,
        stats.dram_bw_utilization * 100.0
    );
    println!("C = A + B verified for {n} elements");
    Ok(())
}
