//! Multi-device fleet scaling (§III-I) and NDP-in-switch (§III-J), fully
//! simulated: N real CXL-M²NDP devices behind a CXL switch run a sharded
//! DLRM SLS batch (disjoint outputs, no combine) and a tensor-parallel OPT
//! decode step (ring all-reduce as actual switch P2P traffic), then the
//! same SLS batch runs on an in-switch NDP complex pulling from passive
//! CXL memories.
//!
//! ```text
//! cargo run --release --example fleet_scaling
//! M2NDP_FLEET_JOBS=8 cargo run --release --example fleet_scaling   # shard-parallel
//! ```
//!
//! `M2NDP_FLEET_JOBS` sets how many workers advance the fleet's devices
//! concurrently (`Fleet::parallelism`); results are bit-identical at every
//! setting — only wall-clock changes.

use m2ndp::core::fleet::{Fleet, FleetConfig, SwitchNdp};
use m2ndp::core::M2ndpConfig;
use m2ndp::cxl::SwitchConfig;
use m2ndp::workloads::{dlrm, opt};

fn device_cfg() -> M2ndpConfig {
    let mut cfg = M2ndpConfig::default_device();
    cfg.engine.units = 8; // bench scale, keeps the example in seconds
    cfg
}

fn fleet(devices: usize) -> Fleet {
    Fleet::new(FleetConfig {
        devices,
        device: device_cfg(),
        switch: SwitchConfig::default(),
        hdm_bytes_per_device: 1 << 30,
    })
}

fn dlrm_cfg() -> dlrm::DlrmConfig {
    dlrm::DlrmConfig {
        table_rows: 32 << 10,
        dim: 64,
        lookups: 80,
        batch: 64,
        zipf_theta: 0.9,
        seed: 0xD12A,
    }
}

/// Shards one SLS batch over the fleet; returns total cycles.
fn run_dlrm(devices: usize) -> Result<u64, Box<dyn std::error::Error>> {
    let mut fleet = fleet(devices);
    let mut datas = Vec::new();
    for (d, cfg) in dlrm::shard(dlrm_cfg(), devices as u32).iter().enumerate() {
        let data = dlrm::generate(*cfg, fleet.device_mut(d).memory_mut());
        let kid = fleet.device_mut(d).register_kernel(dlrm::kernel());
        let pool = fleet.shard_base(d);
        fleet.launch_routed(0, pool, dlrm::launch(&data, kid))?;
        datas.push(data);
    }
    let run = fleet.run_launched();
    for (d, data) in datas.iter().enumerate() {
        dlrm::verify(data, fleet.device(d).memory()).map_err(|e| format!("shard {d}: {e}"))?;
    }
    Ok(run.compute_done)
}

/// Tensor-parallel decode step over the fleet; returns (total, all-reduce)
/// cycles.
fn run_opt(devices: usize) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    let base = opt::OptConfig {
        hidden: 256,
        heads: 8,
        ffn: 1024,
        layers: 1,
        context: 64,
        seed: 7,
    };
    let mut fleet = fleet(devices);
    for (d, cfg) in opt::tensor_parallel(base, devices as u32)
        .iter()
        .enumerate()
    {
        let data = opt::generate(*cfg, fleet.device_mut(d).memory_mut());
        let dev = fleet.device_mut(d);
        let kernels = opt::OptKernels {
            gemv: dev.register_kernel(opt::gemv_kernel()),
            scores: dev.register_kernel(opt::scores_kernel()),
            softmax: dev.register_kernel(opt::softmax_kernel()),
            wsum: dev.register_kernel(opt::weighted_sum_kernel()),
        };
        let units = dev.config().engine.units;
        let pool = fleet.shard_base(d);
        for (_k, launch) in opt::decode_step_launches(&data, &kernels, units) {
            fleet.launch_routed_and_run(pool, launch)?;
        }
        opt::verify(&data, fleet.device(d).memory()).map_err(|e| format!("shard {d}: {e}"))?;
    }
    let compute = fleet.completion();
    let bytes = if devices > 1 {
        opt::tensor_parallel_allreduce_bytes(&base)
    } else {
        0
    };
    let done = fleet.ring_allreduce(compute, bytes);
    Ok((done, done - compute))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fleet scaling over the switch (8 units/device, DLRM batch 64):\n");
    println!("devices  DLRM cycles  speedup   OPT cycles  speedup  all-reduce");
    let d1 = run_dlrm(1)?;
    let (o1, _) = run_opt(1)?;
    for n in [1usize, 2, 4, 8] {
        let d = run_dlrm(n)?;
        let (o, ar) = run_opt(n)?;
        println!(
            "{n:>7}  {d:>11}  {:>6.2}x  {o:>10}  {:>6.2}x  {ar:>9} cy",
            d1 as f64 / d as f64,
            o1 as f64 / o as f64,
        );
    }

    println!("\nNDP-in-switch: one NDP complex pulling from passive memories:\n");
    println!("memories  cycles   speedup");
    let mut first = None;
    for memories in [1u32, 2, 4, 8] {
        let mut sw = SwitchNdp::new(&device_cfg(), SwitchConfig::default(), memories);
        let dev = sw.device_mut();
        let data = dlrm::generate(dlrm_cfg(), dev.memory_mut());
        let kid = dev.register_kernel(dlrm::kernel());
        let start = dev.now();
        let inst = dev.launch(dlrm::launch(&data, kid))?;
        let cycles = dev.run_until_finished(inst) - start;
        dlrm::verify(&data, dev.memory())?;
        let base = *first.get_or_insert(cycles);
        println!(
            "{memories:>8}  {cycles:>6}  {:>6.2}x",
            base as f64 / cycles as f64
        );
    }
    println!("\nports scale the pull bandwidth until the in-switch NDP saturates (§III-J)");
    Ok(())
}
