//! OLAP offload: runs the TPC-H Q6 filter Evaluate phase on the NDP device
//! and compares against the host-baseline model (the Fig. 10a experiment,
//! one query).
//!
//! ```text
//! cargo run --release --example olap_offload
//! ```

use m2ndp::host::cpu::{DataHome, HostCpu, HostCpuConfig};
use m2ndp::workloads::olap;
use m2ndp::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = SystemBuilder::m2ndp().units(8).build();
    let cfg = olap::OlapConfig {
        rows: 1 << 20,
        seed: 42,
    };
    let data = olap::generate(cfg, device.memory_mut());
    let q6 = &olap::queries()[0];
    println!(
        "{}: {} predicates over {} rows",
        q6.name,
        q6.predicates.len(),
        cfg.rows
    );

    let kid = device.register_kernel(olap::evaluate_kernel());
    let start = device.now();
    for launch in olap::evaluate_launches(&data, q6, kid) {
        let inst = device.launch(launch)?;
        device.run_until_finished(inst);
    }
    let cycles = device.now() - start;
    olap::verify(&data, q6, device.memory()).map_err(std::io::Error::other)?;

    let m2_ns = device.config().engine.freq.ns_from_cycles(cycles);
    let sel = olap::selectivity(&data, q6, device.memory());
    println!(
        "Evaluate on M2NDP: {:.0} us, selectivity {:.2}% (TPC-H Q6 is ~2%)",
        m2_ns / 1e3,
        sel * 100.0
    );

    // Host baseline: one core sweeping columns over the CXL link.
    let host = HostCpu::new(HostCpuConfig::default());
    let bytes = olap::evaluate_bytes(&data, q6);
    let baseline_ns = host.stream_runtime_ns(bytes, bytes / 4, DataHome::CxlExpander)
        * (host.config().cores as f64); // single core: undo the all-core scaling
    println!(
        "host baseline Evaluate: {:.0} us -> M2NDP speedup {:.0}x (paper: 95-141x per query)",
        baseline_ns / 1e3,
        baseline_ns / m2_ns
    );
    Ok(())
}
