//! Multi-tenant serving over a simulated CXL-M²NDP fleet: two open-loop
//! tenants (an interactive Poisson stream and a bursty trace replay) issue
//! KVStore GETs against four devices behind a CXL switch. Every request is
//! an actual M²func kernel launch on a cycle-level device simulator,
//! routed to the owning shard through the HDM router and charged on the
//! switch ports (Fig. 11c; the event-driven runtime is
//! `m2ndp::host::serve`).
//!
//! ```text
//! cargo run --release --example serving_tail_latency
//! ```

use m2ndp::core::fleet::{Fleet, FleetConfig};
use m2ndp::core::M2ndpConfig;
use m2ndp::cxl::SwitchConfig;
use m2ndp::host::offload::OffloadMechanism;
use m2ndp::host::serve::{self, KvServeWorkload, ServeBackend, ServeConfig, TenantSpec};

fn tenants(rate_per_sec: f64) -> Vec<TenantSpec> {
    let burst_gap = 1e9 / (rate_per_sec * 0.3);
    // slo_ns stays at the documented 5 µs default.
    vec![
        TenantSpec::poisson("interactive", rate_per_sec * 0.7)
            .requests(1200)
            .seed(0xA11CE),
        TenantSpec::trace(
            "batch-replay",
            vec![0.4 * burst_gap, 0.8 * burst_gap, 1.8 * burst_gap],
        )
        .requests(600)
        .seed(0xB0B),
    ]
}

fn main() {
    println!("serving 1800 requests per point on a 4-device fleet (2 tenants):\n");
    println!(
        "{:<12} {:>12} {:>16} {:>16} {:>14} {:>10}",
        "mechanism", "offered/s", "interactive P95", "batch P95", "throughput/s", "SLO misses"
    );
    for (label, mechanism) in [
        ("M2func", OffloadMechanism::M2Func),
        ("CXL.io_DR", OffloadMechanism::CxlIoDirect),
        ("CXL.io_RB", OffloadMechanism::CxlIoRingBuffer),
    ] {
        for rate in [2e5, 2e7] {
            let mut cfg = M2ndpConfig::default_device();
            cfg.engine.units = 2;
            let mut backend = ServeBackend::Fleet(Box::new(Fleet::new(FleetConfig {
                devices: 4,
                device: cfg,
                switch: SwitchConfig::default(),
                hdm_bytes_per_device: 1 << 30,
            })));
            let mut wl = KvServeWorkload::build(&mut backend, serve::KV_ITEMS_PER_DEVICE, 0.99);
            let serve_cfg = ServeConfig::with_defaults(mechanism);
            let mut report = serve::run(&mut backend, &mut wl, &serve_cfg, &tenants(rate));
            let slo: u64 = report.tenants.iter().map(|t| t.slo_violations).sum();
            println!(
                "{label:<12} {rate:>12.0e} {:>13.0} ns {:>13.0} ns {:>14.2e} {slo:>10}",
                report.tenants[0].latencies.percentile(0.95),
                report.tenants[1].latencies.percentile(0.95),
                report.throughput,
            );
        }
    }
    println!(
        "\nM2func keeps its two CXL.mem one-way trips out of the tail and its 48 \
         concurrent kernels\nahead of the offered load; direct MMIO serializes on its \
         single device register and\nblows the 5 us SLO once saturated (Figs. 5, 10b, 11a)."
    );
}
