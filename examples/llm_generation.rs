//! LLM generation on the NDP device: one transformer decode step of a
//! scaled OPT model — GEMVs staged through the scratchpad, attention over
//! the KV cache, softmax on the vector SFU — with extrapolation to the real
//! OPT-30B per-token cost.
//!
//! ```text
//! cargo run --release --example llm_generation
//! ```

use m2ndp::workloads::opt;
use m2ndp::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = SystemBuilder::m2ndp().units(8).build();
    let cfg = opt::OptConfig {
        hidden: 512,
        heads: 8,
        ffn: 2048,
        layers: 1,
        context: 128,
        seed: 0x3000,
    };
    println!(
        "scaled OPT decode step: H={}, {} heads, FFN={}, {} layer(s), context {}",
        cfg.hidden, cfg.heads, cfg.ffn, cfg.layers, cfg.context
    );
    let data = opt::generate(cfg, device.memory_mut());
    let kernels = opt::OptKernels {
        gemv: device.register_kernel(opt::gemv_kernel()),
        scores: device.register_kernel(opt::scores_kernel()),
        softmax: device.register_kernel(opt::softmax_kernel()),
        wsum: device.register_kernel(opt::weighted_sum_kernel()),
    };
    let units = device.config().engine.units;
    let start = device.now();
    for (i, (_k, launch)) in opt::decode_step_launches(&data, &kernels, units)
        .into_iter()
        .enumerate()
    {
        let inst = device.launch(launch)?;
        device.run_until_finished(inst);
        let _ = i;
    }
    let cycles = device.now() - start;
    opt::verify(&data, device.memory()).map_err(std::io::Error::other)?;

    let freq = device.config().engine.freq;
    let ns = freq.ns_from_cycles(cycles);
    let stats = device.stats();
    println!(
        "decode step: {} cycles ({:.0} us), DRAM {:.1} MB moved, hidden state verified",
        cycles,
        ns / 1e3,
        stats.dram_bytes as f64 / 1e6
    );

    // Extrapolate to the real OPT-30B: token generation is weight-streaming
    // bound, so per-token time scales with the weight bytes per token.
    let sim_bytes = cfg.sim_weight_bytes() as f64;
    let real_bytes = opt::opt_30b_real_bytes() as f64;
    let per_token_ms = ns * (real_bytes / sim_bytes) / 1e6;
    println!(
        "extrapolated OPT-30B per-token latency on one CXL-M2NDP: {:.1} ms \
         ({:.0} GB of weights at the achieved bandwidth)",
        per_token_ms,
        real_bytes / 1e9
    );
    println!("(the Fig. 12b bench scales this across 1-8 devices with tensor parallelism)");
    Ok(())
}
