//! Graph analytics on the NDP device: one PageRank iteration (two kernels)
//! and SSSP to convergence using the multi-body kernel feature (§III-G).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use m2ndp::workloads::graph;
use m2ndp::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut device = SystemBuilder::m2ndp().units(8).build();
    let cfg = graph::GraphConfig {
        nodes: 16 << 10,
        edges: 96 << 10,
        seed: 0x6247,
    };
    let data = graph::generate(cfg, device.memory_mut());
    println!(
        "graph: {} vertices, {} edges (hub-skewed degrees)",
        cfg.nodes, cfg.edges
    );

    // --- PageRank: contrib kernel then the irregular gather kernel. ---
    let k1 = device.register_kernel(graph::pgrank_contrib_kernel());
    let k2 = device.register_kernel(graph::pgrank_gather_kernel());
    let (l1, l2) = graph::pgrank_launches(&data, k1, k2);
    let start = device.now();
    let i1 = device.launch(l1)?;
    device.run_until_finished(i1);
    let i2 = device.launch(l2)?;
    device.run_until_finished(i2);
    let pr_cycles = device.now() - start;
    graph::pgrank_verify(&data, device.memory()).map_err(std::io::Error::other)?;
    println!(
        "PGRANK iteration: {} cycles ({:.0} us), verified against the host reference",
        pr_cycles,
        device.config().engine.freq.ns_from_cycles(pr_cycles) / 1e3
    );

    // --- SSSP: one kernel, N body iterations with implicit barriers. ---
    let sweeps = graph::bellman_ford_sweeps_needed(&data, device.memory());
    let kid = device.register_kernel(graph::sssp_kernel());
    let start = device.now();
    let inst = device.launch(graph::sssp_launch(&data, kid, sweeps + 1))?;
    device.run_until_finished(inst);
    let sssp_cycles = device.now() - start;
    graph::sssp_verify(&data, device.memory()).map_err(std::io::Error::other)?;
    println!(
        "SSSP: {} Bellman-Ford sweeps as multi-body iterations, {} cycles ({:.0} us), \
         distances match Dijkstra",
        sweeps + 1,
        sssp_cycles,
        device.config().engine.freq.ns_from_cycles(sssp_cycles) / 1e3
    );

    let stats = device.stats();
    println!(
        "device totals: {} instructions, {} memory requests, row-hit rate {:.0}%",
        stats.instrs,
        stats.mem_reqs,
        stats.dram_row_hit_rate * 100.0
    );
    Ok(())
}
